//! IL well-formedness checking.
//!
//! The verifier is run after lowering and after every transformation pass
//! in tests, so that a bug in the inliner or optimizer surfaces as a
//! structured [`VerifyError`] rather than a VM crash later.

use std::fmt;

use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::{Callee, Inst, Terminator};
use crate::module::Module;

/// A well-formedness violation found by [`verify_module`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the violation was found, if attributable.
    pub func: Option<FuncId>,
    /// Block in which the violation was found, if attributable.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.block) {
            (Some(fu), Some(b)) => write!(f, "in {fu} at {b}: {}", self.message),
            (Some(fu), None) => write!(f, "in {fu}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

struct Checker<'m> {
    module: &'m Module,
    errors: Vec<VerifyError>,
}

impl<'m> Checker<'m> {
    fn err(&mut self, func: Option<FuncId>, block: Option<BlockId>, message: String) {
        self.errors.push(VerifyError {
            func,
            block,
            message,
        });
    }

    fn check_module(&mut self) {
        let mut seen_sites = std::collections::HashSet::new();
        let site_limit = self.module.call_site_limit();
        for (fi, _) in self.module.functions.iter().enumerate() {
            self.check_function(FuncId::from_index(fi), &mut seen_sites, site_limit);
        }
        let mut names = std::collections::HashSet::new();
        for f in &self.module.functions {
            if !names.insert(f.name.as_str()) {
                self.err(None, None, format!("duplicate function name `{}`", f.name));
            }
        }
        for g in &self.module.globals {
            if g.init.len() as u64 > g.size {
                self.err(
                    None,
                    None,
                    format!(
                        "global `{}` initializer ({} bytes) exceeds size ({})",
                        g.name,
                        g.init.len(),
                        g.size
                    ),
                );
            }
            for &(off, func) in &g.func_relocs {
                if off + 8 > g.size {
                    self.err(
                        None,
                        None,
                        format!("global `{}` relocation at {off} out of range", g.name),
                    );
                }
                if func.index() >= self.module.functions.len() {
                    self.err(
                        None,
                        None,
                        format!("global `{}` relocation targets invalid {func}", g.name),
                    );
                }
            }
        }
    }

    fn check_function(
        &mut self,
        id: FuncId,
        seen_sites: &mut std::collections::HashSet<u32>,
        site_limit: u32,
    ) {
        let f = self.module.function(id);
        if f.num_params > f.num_regs {
            self.err(
                Some(id),
                None,
                format!(
                    "num_params ({}) exceeds num_regs ({})",
                    f.num_params, f.num_regs
                ),
            );
        }
        if f.blocks.is_empty() {
            self.err(Some(id), None, "function has no blocks".into());
            return;
        }
        let nblocks = f.blocks.len();
        let check_reg = |r: Reg| r.0 < f.num_regs;
        for (bi, b) in f.blocks.iter().enumerate() {
            let bid = BlockId::from_index(bi);
            for inst in &b.insts {
                if let Some(d) = inst.def() {
                    if !check_reg(d) {
                        self.err(Some(id), Some(bid), format!("def of invalid register {d}"));
                    }
                }
                let mut bad_use = None;
                inst.for_each_use(|r| {
                    if !check_reg(r) && bad_use.is_none() {
                        bad_use = Some(r);
                    }
                });
                if let Some(r) = bad_use {
                    self.err(Some(id), Some(bid), format!("use of invalid register {r}"));
                }
                match inst {
                    Inst::AddrOfSlot { slot, .. } if slot.index() >= f.slots.len() => {
                        self.err(Some(id), Some(bid), format!("invalid slot {slot}"));
                    }
                    Inst::AddrOfGlobal { global, .. }
                        if global.index() >= self.module.globals.len() =>
                    {
                        self.err(Some(id), Some(bid), format!("invalid global {global}"));
                    }
                    Inst::AddrOfFunc { func, .. }
                        if func.index() >= self.module.functions.len() =>
                    {
                        self.err(Some(id), Some(bid), format!("invalid function {func}"));
                    }
                    Inst::Call {
                        site,
                        callee,
                        args,
                        dst,
                    } => {
                        if site.0 >= site_limit {
                            self.err(
                                Some(id),
                                Some(bid),
                                format!("{site} was never allocated by the module"),
                            );
                        }
                        if !seen_sites.insert(site.0) {
                            self.err(
                                Some(id),
                                Some(bid),
                                format!("{site} appears more than once"),
                            );
                        }
                        match callee {
                            Callee::Func(cf) => {
                                if cf.index() >= self.module.functions.len() {
                                    self.err(
                                        Some(id),
                                        Some(bid),
                                        format!("call to invalid function {cf}"),
                                    );
                                } else {
                                    let callee_fn = self.module.function(*cf);
                                    if args.len() != callee_fn.num_params as usize {
                                        self.err(
                                            Some(id),
                                            Some(bid),
                                            format!(
                                                "call to `{}` passes {} args, expects {}",
                                                callee_fn.name,
                                                args.len(),
                                                callee_fn.num_params
                                            ),
                                        );
                                    }
                                }
                            }
                            Callee::Ext(x) => {
                                if x.index() >= self.module.externs.len() {
                                    self.err(
                                        Some(id),
                                        Some(bid),
                                        format!("call to invalid extern {x}"),
                                    );
                                } else {
                                    let decl = &self.module.externs[x.index()];
                                    if args.len() != decl.num_params as usize {
                                        self.err(
                                            Some(id),
                                            Some(bid),
                                            format!(
                                                "call to extern `{}` passes {} args, expects {}",
                                                decl.name,
                                                args.len(),
                                                decl.num_params
                                            ),
                                        );
                                    }
                                    if dst.is_some() && !decl.has_ret {
                                        self.err(
                                            Some(id),
                                            Some(bid),
                                            format!(
                                                "extern `{}` has no return value but call uses one",
                                                decl.name
                                            ),
                                        );
                                    }
                                }
                            }
                            Callee::Reg(_) => {}
                        }
                    }
                    _ => {}
                }
            }
            let mut bad_target = None;
            b.term.for_each_successor(|t| {
                if t.index() >= nblocks && bad_target.is_none() {
                    bad_target = Some(t);
                }
            });
            if let Some(t) = bad_target {
                self.err(
                    Some(id),
                    Some(bid),
                    format!("terminator targets invalid {t}"),
                );
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                if !check_reg(*cond) {
                    self.err(
                        Some(id),
                        Some(bid),
                        format!("branch on invalid register {cond}"),
                    );
                }
            }
            if let Terminator::Return(Some(r)) = &b.term {
                if !check_reg(*r) {
                    self.err(
                        Some(id),
                        Some(bid),
                        format!("return of invalid register {r}"),
                    );
                }
            }
        }
    }
}

/// Checks module-wide IL invariants.
///
/// Verified properties: register/block/slot/global/function indices are in
/// range, call-site ids are allocated and globally unique, direct-call
/// arities match the callee, extern calls match their declaration, function
/// names are unique, and global initializers fit their size.
///
/// # Errors
///
/// Returns every violation found (not just the first).
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let mut c = Checker {
        module,
        errors: Vec::new(),
    };
    c.check_module();
    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(c.errors)
    }
}

/// Verifies a single function of `module` — the per-transaction check of
/// the recovery layer: after one arc is expanded into a caller, only that
/// caller needs re-verification, not the whole module.
///
/// Call-site *uniqueness across functions* is a whole-module property and
/// is not checked here; in-range site ids, register/slot/global/callee
/// bounds, arities, and extern signatures all are.
///
/// # Errors
///
/// Returns every problem found in the function.
pub fn verify_function(module: &Module, func: FuncId) -> Result<(), Vec<VerifyError>> {
    let mut c = Checker {
        module,
        errors: Vec::new(),
    };
    let mut seen_sites = std::collections::HashSet::new();
    c.check_function(func, &mut seen_sites, module.call_site_limit());
    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(c.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::ids::{ExternId, SlotId};
    use crate::module::{ExternDecl, Global, Module};

    fn ok_module() -> Module {
        let mut m = Module::new();
        let mut main = Function::new("main", 0);
        let helper_id = FuncId(1); // added below
        let site = m.fresh_call_site();
        let r = main.new_reg();
        let entry = main.entry();
        main.block_mut(entry)
            .insts
            .push(Inst::Const { dst: r, value: 1 });
        main.block_mut(entry).insts.push(Inst::Call {
            site,
            callee: Callee::Func(helper_id),
            args: vec![r],
            dst: Some(r),
        });
        main.block_mut(entry).term = Terminator::Return(Some(r));
        m.add_function(main);
        let mut helper = Function::new("helper", 1);
        let he = helper.entry();
        helper.block_mut(he).term = Terminator::Return(Some(Reg(0)));
        m.add_function(helper);
        m
    }

    #[test]
    fn valid_module_verifies() {
        assert_eq!(verify_module(&ok_module()), Ok(()));
    }

    #[test]
    fn detects_bad_register() {
        let mut m = ok_module();
        let entry = m.function(FuncId(1)).entry();
        m.function_mut(FuncId(1)).block_mut(entry).term = Terminator::Return(Some(Reg(99)));
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("invalid register")));
    }

    #[test]
    fn detects_bad_block_target() {
        let mut m = ok_module();
        let entry = m.function(FuncId(1)).entry();
        m.function_mut(FuncId(1)).block_mut(entry).term = Terminator::Jump(BlockId(42));
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("invalid b42")));
    }

    #[test]
    fn detects_arity_mismatch() {
        let mut m = ok_module();
        // Rewrite the call to pass zero args.
        let entry = m.function(FuncId(0)).entry();
        if let Inst::Call { args, .. } = &mut m.function_mut(FuncId(0)).block_mut(entry).insts[1] {
            args.clear();
        }
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expects 1")));
    }

    #[test]
    fn detects_duplicate_call_site() {
        let mut m = ok_module();
        let entry = m.function(FuncId(0)).entry();
        let call = m.function(FuncId(0)).block(entry).insts[1].clone();
        m.function_mut(FuncId(0)).block_mut(entry).insts.push(call);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("more than once")));
    }

    #[test]
    fn detects_unallocated_call_site() {
        let mut m = ok_module();
        let entry = m.function(FuncId(1)).entry();
        let r = Reg(0);
        m.function_mut(FuncId(1))
            .block_mut(entry)
            .insts
            .push(Inst::Call {
                site: crate::ids::CallSiteId(999),
                callee: Callee::Func(FuncId(0)),
                args: vec![],
                dst: Some(r),
            });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("never allocated")));
    }

    #[test]
    fn detects_duplicate_function_names() {
        let mut m = ok_module();
        m.add_function(Function::new("helper", 0));
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate function name")));
    }

    #[test]
    fn detects_bad_slot_and_global() {
        let mut m = ok_module();
        let f = m.function_mut(FuncId(1));
        let r = f.new_reg();
        let entry = f.entry();
        f.block_mut(entry).insts.push(Inst::AddrOfSlot {
            dst: r,
            slot: SlotId(3),
        });
        f.block_mut(entry).insts.push(Inst::AddrOfGlobal {
            dst: r,
            global: crate::ids::GlobalId(5),
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("invalid slot")));
        assert!(errs.iter().any(|e| e.message.contains("invalid global")));
    }

    #[test]
    fn detects_extern_misuse() {
        let mut m = ok_module();
        m.add_extern(ExternDecl {
            name: "__halt".into(),
            num_params: 0,
            has_ret: false,
        });
        let site = m.fresh_call_site();
        let f = m.function_mut(FuncId(1));
        let r = Reg(0);
        let entry = f.entry();
        f.block_mut(entry).insts.push(Inst::Call {
            site,
            callee: Callee::Ext(ExternId(0)),
            args: vec![],
            dst: Some(r),
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no return value")));
    }

    #[test]
    fn detects_oversized_global_init() {
        let mut m = ok_module();
        m.add_global(Global {
            name: "g".into(),
            size: 2,
            align: 1,
            init: vec![0; 4],
            func_relocs: vec![],
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("exceeds size")));
    }

    #[test]
    fn detects_reloc_out_of_range() {
        let mut m = ok_module();
        let mut g = Global::zeroed("tbl", 8, 8);
        g.func_relocs.push((4, FuncId(0)));
        m.add_global(g);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }
}
