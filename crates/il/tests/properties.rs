//! Property tests over the IL: random well-formed modules must verify,
//! print, and keep their structural accessors coherent.

use impact_il::*;
use proptest::prelude::*;

/// Strategy for a random straight-line function with `params` formals:
/// a sequence of pure ops over already-defined registers.
fn function_strategy() -> impl Strategy<Value = Function> {
    (1u32..4, proptest::collection::vec(any::<u8>(), 0..40)).prop_map(|(params, ops)| {
        let mut fb = FunctionBuilder::new("f", params);
        let mut defined: Vec<Reg> = (0..params).map(Reg).collect();
        for op in ops {
            let pick = |seed: u8, defined: &Vec<Reg>| defined[seed as usize % defined.len()];
            let r = match op % 6 {
                0 => fb.const_(op as i64 * 7 - 100),
                1 => fb.bin(BinOp::Add, pick(op, &defined), pick(op / 2, &defined)),
                2 => fb.bin(BinOp::Xor, pick(op, &defined), pick(op / 3, &defined)),
                3 => fb.un(UnOp::Neg, pick(op, &defined)),
                4 => fb.cmp(CmpOp::SLt, pick(op, &defined), pick(op / 2, &defined)),
                _ => fb.push_ext(pick(op, &defined), Width::W2, op % 2 == 0),
            };
            defined.push(r);
        }
        let ret = *defined.last().expect("at least the params");
        fb.terminate(Terminator::Return(Some(ret)));
        fb.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Builder-produced functions always verify and print.
    #[test]
    fn generated_functions_verify_and_print(f in function_strategy()) {
        let mut m = Module::new();
        m.add_function(f);
        prop_assert!(verify_module(&m).is_ok());
        let text = module_to_string(&m);
        prop_assert!(text.contains("func @f0"));
        // Size = instructions + one terminator per block.
        let f = m.function(FuncId(0));
        let insts: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        prop_assert_eq!(f.size(), (insts + f.blocks.len()) as u64);
    }

    /// def/use bookkeeping: every register a generated instruction uses
    /// or defines is within num_regs (what the verifier builds on).
    #[test]
    fn def_use_stay_in_range(f in function_strategy()) {
        let n = f.num_regs;
        f.for_each_inst(|inst| {
            if let Some(d) = inst.def() {
                assert!(d.0 < n);
            }
            inst.for_each_use(|u| assert!(u.0 < n));
        });
    }

    /// Frame layout: slot offsets are aligned, non-overlapping, and the
    /// frame covers them all.
    #[test]
    fn frame_layout_is_consistent(sizes in proptest::collection::vec((1u64..64, 0u8..4), 0..10)) {
        let mut f = Function::new("t", 0);
        for (i, (size, align_pow)) in sizes.iter().enumerate() {
            f.add_slot(Slot {
                name: format!("s{i}"),
                size: *size,
                align: 1 << align_pow,
            });
        }
        let offsets = f.slot_offsets();
        for (i, (&off, slot)) in offsets.iter().zip(&f.slots).enumerate() {
            prop_assert_eq!(off % slot.align, 0, "slot {} misaligned", i);
            if i + 1 < offsets.len() {
                prop_assert!(off + slot.size <= offsets[i + 1], "slot {} overlaps next", i);
            }
        }
        if let (Some(&last), Some(slot)) = (offsets.last(), f.slots.last()) {
            prop_assert!(f.frame_size() >= last + slot.size);
        }
        prop_assert!(f.frame_size() >= CALL_OVERHEAD_BYTES);
    }

    /// Successor remapping through the identity changes nothing.
    #[test]
    fn identity_successor_remap_is_noop(f in function_strategy()) {
        let mut g = f.clone();
        for b in &mut g.blocks {
            b.term.map_successors(|t| t);
        }
        prop_assert_eq!(f, g);
    }
}
