//! Call-site classification: *external*, *pointer*, *unsafe*, *safe*.
//!
//! This is the categorization of Tables 2 and 3 of the paper: every static
//! call site falls into exactly one class, and only *safe* sites are
//! candidates for inline expansion.

use impact_callgraph::CallGraph;
use impact_il::{CallSiteId, Callee, FuncId, Module};

use crate::InlineConfig;

/// The class of a static call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Calls a function whose body is unavailable (library/system call).
    External,
    /// Calls through a function pointer.
    Pointer,
    /// Hazardous or unprofitable (see [`UnsafeReason`]).
    Unsafe,
    /// A candidate for inline expansion.
    Safe,
}

/// Why a site was classified unsafe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeReason {
    /// Estimated execution count below the threshold (paper: 10).
    LowWeight,
    /// The call is directly self-recursive; only the first iteration could
    /// be absorbed, so the paper does not deal with it (§2.3).
    SelfRecursive,
    /// Expanding would introduce a large frame into a recursive path and
    /// risk control-stack explosion (§2.3.2).
    RecursiveStack,
}

/// One classified static call site.
#[derive(Clone, Debug)]
pub struct ClassifiedSite {
    /// The site.
    pub site: CallSiteId,
    /// The calling function.
    pub caller: FuncId,
    /// The called function, for direct user calls.
    pub callee: Option<FuncId>,
    /// Expected execution count (arc weight).
    pub weight: u64,
    /// The class.
    pub class: SiteClass,
    /// Set when `class == Unsafe`.
    pub unsafe_reason: Option<UnsafeReason>,
}

/// The classification of every static call site in a module.
#[derive(Clone, Debug)]
pub struct Classification {
    /// All sites, in module iteration order.
    pub sites: Vec<ClassifiedSite>,
}

/// Aggregate counts per class, both static (site counts — Table 2) and
/// dynamic (summed weights — Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassTotals {
    /// External sites / dynamic external calls.
    pub external: u64,
    /// Pointer sites / dynamic pointer calls.
    pub pointer: u64,
    /// Unsafe sites / dynamic unsafe calls.
    pub r#unsafe: u64,
    /// Safe sites / dynamic safe calls.
    pub safe: u64,
}

impl ClassTotals {
    /// Sum over all four classes.
    pub fn total(&self) -> u64 {
        self.external + self.pointer + self.r#unsafe + self.safe
    }

    /// The share of a class as a percentage of the total (0 when empty).
    pub fn percent(&self, class: SiteClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let v = match class {
            SiteClass::External => self.external,
            SiteClass::Pointer => self.pointer,
            SiteClass::Unsafe => self.r#unsafe,
            SiteClass::Safe => self.safe,
        };
        100.0 * v as f64 / t as f64
    }
}

impl Classification {
    /// Static per-class site counts (the paper's Table 2 row).
    pub fn static_totals(&self) -> ClassTotals {
        let mut t = ClassTotals::default();
        for s in &self.sites {
            let slot = match s.class {
                SiteClass::External => &mut t.external,
                SiteClass::Pointer => &mut t.pointer,
                SiteClass::Unsafe => &mut t.r#unsafe,
                SiteClass::Safe => &mut t.safe,
            };
            *slot += 1;
        }
        t
    }

    /// Dynamic per-class call counts — each site weighted by its expected
    /// execution count (the paper's Table 3 row).
    pub fn dynamic_totals(&self) -> ClassTotals {
        let mut t = ClassTotals::default();
        for s in &self.sites {
            let slot = match s.class {
                SiteClass::External => &mut t.external,
                SiteClass::Pointer => &mut t.pointer,
                SiteClass::Unsafe => &mut t.r#unsafe,
                SiteClass::Safe => &mut t.safe,
            };
            *slot += s.weight;
        }
        t
    }

    /// The safe sites, most frequently executed first.
    pub fn safe_sites_by_weight(&self) -> Vec<&ClassifiedSite> {
        let mut v: Vec<&ClassifiedSite> = self
            .sites
            .iter()
            .filter(|s| s.class == SiteClass::Safe)
            .collect();
        v.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.site.cmp(&b.site)));
        v
    }
}

/// Classifies every static call site of `module` against the weighted
/// call graph, applying the paper's hazard rules:
///
/// * external target → **external**;
/// * call through pointer → **pointer**;
/// * arc weight below [`InlineConfig::weight_threshold`] → **unsafe**
///   (unprofitable; also bounds compilation time, §3.4);
/// * direct self-recursion → **unsafe** (§2.3);
/// * caller or callee on a (conservative) cycle *and* the callee's frame
///   exceeds [`InlineConfig::stack_bound`] → **unsafe** (the
///   control-stack-explosion hazard of §2.3.2 — the paper's `m`/`n`
///   example puts a huge frame into a recursion);
/// * everything else → **safe**.
pub fn classify(module: &Module, graph: &CallGraph, config: &InlineConfig) -> Classification {
    let cyclic = graph.cyclic_funcs();
    let mut sites = Vec::new();
    for (caller, site, callee) in module.all_call_sites() {
        let weight = graph.arc_for_site(site).map(|a| a.weight).unwrap_or(0);
        let (class, reason, callee_id) = match callee {
            Callee::Ext(_) => (SiteClass::External, None, None),
            Callee::Reg(_) => (SiteClass::Pointer, None, None),
            Callee::Func(f) => {
                let frame = module.function(f).frame_size();
                if weight < config.weight_threshold {
                    (SiteClass::Unsafe, Some(UnsafeReason::LowWeight), Some(f))
                } else if f == caller {
                    (
                        SiteClass::Unsafe,
                        Some(UnsafeReason::SelfRecursive),
                        Some(f),
                    )
                } else if (cyclic.contains(&caller) || cyclic.contains(&f))
                    && frame > config.stack_bound
                {
                    (
                        SiteClass::Unsafe,
                        Some(UnsafeReason::RecursiveStack),
                        Some(f),
                    )
                } else {
                    (SiteClass::Safe, None, Some(f))
                }
            }
        };
        sites.push(ClassifiedSite {
            site,
            caller,
            callee: callee_id,
            weight,
            class,
            unsafe_reason: reason,
        });
    }
    Classification { sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    fn classified(src: &str) -> (Module, Classification) {
        let module = compile(&[Source::new("t.c", src)]).expect("compiles");
        let out = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
        let graph = impact_callgraph::CallGraph::build(&module, &out.profile);
        let c = classify(&module, &graph, &InlineConfig::default());
        (module, c)
    }

    #[test]
    fn one_site_per_call_instruction() {
        let (module, c) = classified(
            "int f(int x) { return x; }\n\
             int main() { return f(1) + f(2) + f(3); }",
        );
        assert_eq!(c.sites.len(), module.all_call_sites().len());
        assert_eq!(c.sites.len(), 3);
    }

    #[test]
    fn weights_come_from_the_profile() {
        let (_, c) = classified(
            "int f(int x) { return x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 25; i++) s += f(i); return s & 0xff; }",
        );
        assert_eq!(c.sites[0].weight, 25);
        assert_eq!(c.sites[0].class, SiteClass::Safe);
    }

    #[test]
    fn low_weight_reason_is_recorded() {
        let (_, c) = classified(
            "int f(int x) { return x; }\n\
             int main() { return f(1); }",
        );
        assert_eq!(c.sites[0].class, SiteClass::Unsafe);
        assert_eq!(c.sites[0].unsafe_reason, Some(UnsafeReason::LowWeight));
    }

    #[test]
    fn weight_exactly_at_threshold_is_safe() {
        // The paper's rule (§4.2) excludes sites with "estimated execution
        // count less than 10": the comparison is strict, so a site whose
        // weight is *exactly* the threshold lands on the safe side. This
        // pins the boundary — a future `<=` regression flips this test.
        let (_, c) = classified(
            "int f(int x) { return x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += f(i); return s & 0xff; }",
        );
        assert_eq!(c.sites[0].weight, 10);
        assert_eq!(c.sites[0].class, SiteClass::Safe);
        assert_eq!(c.sites[0].unsafe_reason, None);
    }

    #[test]
    fn weight_one_below_threshold_is_unsafe() {
        let (_, c) = classified(
            "int f(int x) { return x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) s += f(i); return s & 0xff; }",
        );
        assert_eq!(c.sites[0].weight, 9);
        assert_eq!(c.sites[0].class, SiteClass::Unsafe);
        assert_eq!(c.sites[0].unsafe_reason, Some(UnsafeReason::LowWeight));
    }

    #[test]
    fn boundary_site_is_actually_expanded() {
        // End to end: the weight-10 site is not just classified safe, the
        // planner accepts it under default budgets.
        let module = compile(&[Source::new(
            "t.c",
            "int f(int x) { return x * 3; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += f(i); return s & 0xff; }",
        )])
        .unwrap();
        let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let mut m = module.clone();
        let report = crate::inline_module(&mut m, &out.profile, &InlineConfig::default());
        assert_eq!(report.expanded.len(), 1);
    }

    #[test]
    fn totals_are_consistent_with_sites() {
        let (_, c) = classified(
            "extern int __fgetc(int fd);\n\
             int f(int x) { return x; }\n\
             int main() { int i; int s; s = 0;\n\
               for (i = 0; i < 30; i++) s += f(i);\n\
               return s + __fgetc(0) + 1; }",
        );
        let st = c.static_totals();
        assert_eq!(st.total(), c.sites.len() as u64);
        assert_eq!(st.external, 1);
        assert_eq!(st.safe, 1);
        let dy = c.dynamic_totals();
        assert_eq!(dy.total(), c.sites.iter().map(|s| s.weight).sum::<u64>());
        // Percentages sum to 100 when nonempty.
        let sum = dy.percent(SiteClass::External)
            + dy.percent(SiteClass::Pointer)
            + dy.percent(SiteClass::Unsafe)
            + dy.percent(SiteClass::Safe);
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_totals_percent_is_zero() {
        let t = ClassTotals::default();
        assert_eq!(t.percent(SiteClass::Safe), 0.0);
    }

    #[test]
    fn safe_sites_by_weight_sorts_descending() {
        let (_, c) = classified(
            "int a(int x) { return x; }\n\
             int b(int x) { return x + 1; }\n\
             int main() {\n\
               int i; int s; s = 0;\n\
               for (i = 0; i < 50; i++) s += a(i);\n\
               for (i = 0; i < 20; i++) s += b(i);\n\
               return s & 0xff;\n\
             }",
        );
        let safe = c.safe_sites_by_weight();
        assert_eq!(safe.len(), 2);
        assert!(safe[0].weight >= safe[1].weight);
        assert_eq!(safe[0].weight, 50);
    }
}
