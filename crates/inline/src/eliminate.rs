//! Function-level dead code removal (§2.6).
//!
//! After expansion, the original copy of a called-once function may have
//! become unreachable from `main` and can be deleted — *unless* the call
//! graph is incomplete: an external function must be assumed to call any
//! user function, so with external calls present nothing can go (the
//! paper's conservatism, which its §4.4 numbers reflect).

use std::collections::HashMap;

use impact_callgraph::CallGraph;
use impact_il::{Callee, FuncId, Inst, Module};
use impact_vm::Profile;

/// Removes every function that is provably unreachable from `main`,
/// remapping all function references (calls, address-taken uses, global
/// relocations). Returns the names of the removed functions.
///
/// Reachability follows the conservative graph (including the `$$$` and
/// `###` worst-case arcs), so this is safe in the presence of externals —
/// it just removes less.
pub fn eliminate_unreachable(module: &mut Module) -> Vec<String> {
    // Weights are irrelevant for reachability; an empty profile works.
    let profile = Profile::for_module(module);
    let graph = CallGraph::build(module, &profile);
    // A function whose address is used in a computation may be activated
    // by an asynchronous event or stored dispatch table (§2.6) — keep it
    // even if no call path reaches it.
    let address_taken = module.address_taken_funcs();
    let mut doomed: Vec<FuncId> = graph
        .unreachable_funcs()
        .into_iter()
        .filter(|f| !address_taken.contains(f))
        .collect();
    if doomed.is_empty() {
        return Vec::new();
    }
    doomed.sort();

    // Build the remap table old → new.
    let mut remap: HashMap<FuncId, FuncId> = HashMap::new();
    let mut kept = Vec::with_capacity(module.functions.len() - doomed.len());
    let mut removed_names = Vec::with_capacity(doomed.len());
    let mut doomed_iter = doomed.iter().peekable();
    for (i, f) in std::mem::take(&mut module.functions)
        .into_iter()
        .enumerate()
    {
        let old = FuncId::from_index(i);
        if doomed_iter.peek() == Some(&&old) {
            doomed_iter.next();
            removed_names.push(f.name);
        } else {
            remap.insert(old, FuncId::from_index(kept.len()));
            kept.push(f);
        }
    }
    module.functions = kept;

    // Rewrite all references.
    for f in &mut module.functions {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                match inst {
                    Inst::AddrOfFunc { func, .. } => {
                        *func = remap[func];
                    }
                    Inst::Call {
                        callee: Callee::Func(target),
                        ..
                    } => {
                        *target = remap[target];
                    }
                    _ => {}
                }
            }
        }
    }
    for g in &mut module.globals {
        for (_, func) in &mut g.func_relocs {
            *func = remap[func];
        }
    }
    removed_names
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    fn module_of(src: &str) -> Module {
        compile(&[Source::new("t.c", src)]).expect("compiles")
    }

    #[test]
    fn removes_dead_function_and_remaps_calls() {
        let mut m = module_of(
            "int dead(int x) { return x; }\n\
             int alive(int x) { return x + 1; }\n\
             int main() { return alive(1); }",
        );
        let baseline = run(&m, vec![], vec![], &VmConfig::default())
            .unwrap()
            .exit_code;
        let removed = eliminate_unreachable(&mut m);
        assert_eq!(removed, vec!["dead".to_string()]);
        impact_il::verify_module(&m).expect("still verifies");
        // `alive`'s FuncId changed; the call in main must still resolve.
        let after = run(&m, vec![], vec![], &VmConfig::default())
            .unwrap()
            .exit_code;
        assert_eq!(baseline, after);
    }

    #[test]
    fn keeps_address_taken_functions() {
        let mut m = module_of(
            "int cb(int x) { return x; }\n\
             int (*table[1])(int) = {cb};\n\
             int main() { return 0; }",
        );
        // cb is unreachable by calls but its address is in a dispatch
        // table (§2.6: functions whose addresses are used may be
        // activated asynchronously).
        let removed = eliminate_unreachable(&mut m);
        assert!(removed.is_empty(), "removed {removed:?}");
        assert!(m.func_by_name("cb").is_some());
    }

    #[test]
    fn relocations_are_remapped_after_removal() {
        let mut m = module_of(
            "int dead(int x) { return x; }\n\
             int cb(int x) { return x * 2; }\n\
             int (*table[1])(int) = {cb};\n\
             int main() { int (*f)(int); f = table[0]; return f(21); }",
        );
        let baseline = run(&m, vec![], vec![], &VmConfig::default())
            .unwrap()
            .exit_code;
        assert_eq!(baseline, 42);
        let removed = eliminate_unreachable(&mut m);
        assert_eq!(removed, vec!["dead".to_string()]);
        impact_il::verify_module(&m).unwrap();
        let after = run(&m, vec![], vec![], &VmConfig::default())
            .unwrap()
            .exit_code;
        assert_eq!(after, 42);
    }

    #[test]
    fn nothing_removed_when_all_reachable() {
        let mut m = module_of("int f(int x) { return x; } int main() { return f(1); }");
        assert!(eliminate_unreachable(&mut m).is_empty());
    }
}
