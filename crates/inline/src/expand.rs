//! Physical inline expansion (§2.4, §3.5): code duplication, variable
//! renaming, and symbol-table (slot) updates.
//!
//! Expansion proceeds caller-by-caller in the linear order, so every
//! callee is fully expanded before it is absorbed anywhere. At a call
//! site, the callee's body is cloned with renamed registers, slots, and
//! fresh call-site ids; actual parameters are buffered into the renamed
//! formal registers with `Mov`s (the paper's "new local temporary
//! variables ... buffer the results of the actual parameters"); the call
//! becomes an unconditional jump into the cloned entry, and every cloned
//! `return` becomes a jump back to the split-off continuation (§4.4:
//! "inlined call/return instructions were replaced with unconditional
//! jump instructions into/out of the inlined function bodies").

use std::collections::HashMap;

use impact_il::{
    Block, BlockId, CallSiteId, Callee, FuncId, Function, Inst, Module, Reg, Slot, SlotId,
    Terminator,
};

use crate::plan::InlinePlan;

/// Statistics from the simulated function-definition cache (§3.3).
///
/// The paper constrains expansion to a linear order partly so that
/// function definitions can be cached in memory "to reduce the number of
/// file reads", with write-back replacement. Bodies live in memory here,
/// so the cache is *simulated*: every expansion reads the callee's
/// definition and writes the caller's, through an LRU cache of
/// `capacity` definitions. High hit rates confirm the locality the
/// paper's ordering was designed to create.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefCacheStats {
    /// Cache capacity in function definitions.
    pub capacity: usize,
    /// Definition accesses served from the cache.
    pub hits: u64,
    /// Definition accesses that had to "read the file".
    pub misses: u64,
    /// Dirty definitions written back on eviction or at the end.
    pub writebacks: u64,
}

impl DefCacheStats {
    /// Hit ratio in [0, 1] (0 for an unused cache).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache simulation over function definitions.
pub(crate) struct DefCache {
    capacity: usize,
    /// Most recently used first; the flag marks dirty (modified) entries.
    entries: Vec<(FuncId, bool)>,
    stats: DefCacheStats,
}

impl DefCache {
    pub(crate) fn new(capacity: usize) -> Self {
        DefCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            stats: DefCacheStats {
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
                writebacks: 0,
            },
        }
    }

    pub(crate) fn touch(&mut self, f: FuncId, write: bool) {
        if let Some(pos) = self.entries.iter().position(|(g, _)| *g == f) {
            self.stats.hits += 1;
            let (_, dirty) = self.entries.remove(pos);
            self.entries.insert(0, (f, dirty || write));
            return;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let (_, dirty) = self.entries.pop().expect("nonempty at capacity");
            if dirty {
                self.stats.writebacks += 1;
            }
        }
        self.entries.insert(0, (f, write));
    }

    pub(crate) fn finish(mut self) -> DefCacheStats {
        self.stats.writebacks += self.entries.iter().filter(|(_, d)| *d).count() as u64;
        self.stats
    }
}

/// A record of one performed expansion, mapping the cloned call sites back
/// to their originals (so a re-profile can be compared arc-by-arc).
#[derive(Clone, Debug)]
pub struct ExpansionRecord {
    /// The expanded site (no longer present in the module).
    pub site: CallSiteId,
    /// The caller that absorbed the body.
    pub caller: FuncId,
    /// The callee that was duplicated.
    pub callee: FuncId,
    /// For every call site cloned into the caller: `(original, clone)`.
    pub cloned_sites: Vec<(CallSiteId, CallSiteId)>,
}

/// Executes every planned expansion, in linear order.
///
/// Returns one [`ExpansionRecord`] per performed expansion.
///
/// # Panics
///
/// Panics if the plan refers to sites that do not exist in `module` —
/// plans are only valid for the module they were computed from.
pub fn expand_plan(module: &mut Module, plan: &InlinePlan) -> Vec<ExpansionRecord> {
    expand_plan_with_cache(module, plan, usize::MAX).0
}

/// Like [`expand_plan`], additionally simulating a definition cache of
/// `cache_capacity` function bodies (§3.3's write-back cache) and
/// returning its statistics.
pub fn expand_plan_with_cache(
    module: &mut Module,
    plan: &InlinePlan,
    cache_capacity: usize,
) -> (Vec<ExpansionRecord>, DefCacheStats) {
    let mut cache = DefCache::new(cache_capacity.min(1 << 20));
    let mut records = Vec::with_capacity(plan.expansions.len());
    for e in plan.execution_order() {
        cache.touch(e.callee, false);
        cache.touch(e.caller, true);
        let record = expand_site(module, e.caller, e.site, e.callee);
        records.push(record);
    }
    (records, cache.finish())
}

/// Expands a single direct call site: clones `callee`'s body into
/// `caller`.
pub fn expand_site(
    module: &mut Module,
    caller: FuncId,
    site: CallSiteId,
    callee: FuncId,
) -> ExpansionRecord {
    assert_ne!(caller, callee, "self-recursive sites are never planned");
    let callee_fn: Function = module.function(callee).clone();

    // Pre-allocate fresh call-site ids for the clones.
    let mut cloned_sites = Vec::new();
    let mut fresh_ids = HashMap::new();
    for (_, _, orig_site, _) in callee_fn.call_sites() {
        let fresh = module.fresh_call_site();
        fresh_ids.insert(orig_site, fresh);
        cloned_sites.push((orig_site, fresh));
    }

    let caller_fn = module.function_mut(caller);

    // Locate the call instruction.
    let (call_block, call_idx) = caller_fn
        .call_sites()
        .find(|(_, _, s, _)| *s == site)
        .map(|(b, i, _, _)| (b, i))
        .expect("planned site exists in caller");
    let call_inst = caller_fn.block(call_block).insts[call_idx].clone();
    let Inst::Call {
        callee: call_target,
        args,
        dst,
        ..
    } = call_inst
    else {
        unreachable!("call_sites returned a non-call");
    };
    debug_assert_eq!(call_target, Callee::Func(callee));

    let reg_off = caller_fn.num_regs;
    let slot_off = caller_fn.slots.len() as u32;
    // Block layout: [existing blocks][continuation][cloned callee blocks].
    let cont_block = BlockId::from_index(caller_fn.blocks.len());
    let clone_base = caller_fn.blocks.len() + 1;

    // Split the calling block.
    let (head, tail_insts, orig_term) = {
        let b = caller_fn.block_mut(call_block);
        let tail: Vec<Inst> = b.insts.split_off(call_idx + 1);
        b.insts.pop(); // the call itself
        let term = std::mem::replace(&mut b.term, Terminator::Jump(cont_block));
        (call_block, tail, term)
    };

    // Buffer actual parameters into the renamed formals.
    for (i, arg) in args.iter().enumerate() {
        let formal = Reg(reg_off + i as u32);
        caller_fn.block_mut(head).insts.push(Inst::Mov {
            dst: formal,
            src: *arg,
        });
    }
    caller_fn.block_mut(head).term = Terminator::Jump(BlockId::from_index(clone_base));

    // Continuation block receives the tail of the split block.
    caller_fn.blocks.push(Block {
        insts: tail_insts,
        term: orig_term,
    });
    debug_assert_eq!(caller_fn.blocks.len() - 1, cont_block.index());

    // Import the callee's slots with path-qualified names (§5).
    for slot in &callee_fn.slots {
        caller_fn.slots.push(Slot {
            name: format!("{}.{}", callee_fn.name, slot.name),
            size: slot.size,
            align: slot.align,
        });
    }
    caller_fn.num_regs += callee_fn.num_regs;

    // Clone the callee's blocks with renaming.
    for cb in &callee_fn.blocks {
        let mut insts: Vec<Inst> = Vec::with_capacity(cb.insts.len() + 1);
        for inst in &cb.insts {
            insts.push(rename_inst(inst, reg_off, slot_off, &fresh_ids));
        }
        let term = match &cb.term {
            Terminator::Jump(b) => Terminator::Jump(BlockId::from_index(clone_base + b.index())),
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => Terminator::Branch {
                cond: Reg(cond.0 + reg_off),
                then_to: BlockId::from_index(clone_base + then_to.index()),
                else_to: BlockId::from_index(clone_base + else_to.index()),
            },
            Terminator::Return(v) => {
                // A cloned return funnels its value into the call's
                // destination and jumps to the continuation.
                match (v, dst) {
                    (Some(r), Some(d)) => insts.push(Inst::Mov {
                        dst: d,
                        src: Reg(r.0 + reg_off),
                    }),
                    (None, Some(d)) => {
                        // The callee falls off its end but the caller reads
                        // a value: the VM defines this as 0.
                        insts.push(Inst::Const { dst: d, value: 0 });
                    }
                    _ => {}
                }
                Terminator::Jump(cont_block)
            }
            Terminator::Halt => Terminator::Halt,
        };
        caller_fn.blocks.push(Block { insts, term });
    }

    ExpansionRecord {
        site,
        caller,
        callee,
        cloned_sites,
    }
}

fn rename_inst(
    inst: &Inst,
    reg_off: u32,
    slot_off: u32,
    fresh_ids: &HashMap<CallSiteId, CallSiteId>,
) -> Inst {
    let r = |reg: Reg| Reg(reg.0 + reg_off);
    match inst {
        Inst::Const { dst, value } => Inst::Const {
            dst: r(*dst),
            value: *value,
        },
        Inst::Mov { dst, src } => Inst::Mov {
            dst: r(*dst),
            src: r(*src),
        },
        Inst::Un { op, dst, src } => Inst::Un {
            op: *op,
            dst: r(*dst),
            src: r(*src),
        },
        Inst::Bin { op, dst, lhs, rhs } => Inst::Bin {
            op: *op,
            dst: r(*dst),
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        Inst::Cmp { op, dst, lhs, rhs } => Inst::Cmp {
            op: *op,
            dst: r(*dst),
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        Inst::AddrOfGlobal { dst, global } => Inst::AddrOfGlobal {
            dst: r(*dst),
            global: *global,
        },
        Inst::AddrOfSlot { dst, slot } => Inst::AddrOfSlot {
            dst: r(*dst),
            slot: SlotId(slot.0 + slot_off),
        },
        Inst::AddrOfFunc { dst, func } => Inst::AddrOfFunc {
            dst: r(*dst),
            func: *func,
        },
        Inst::Ext {
            dst,
            src,
            width,
            signed,
        } => Inst::Ext {
            dst: r(*dst),
            src: r(*src),
            width: *width,
            signed: *signed,
        },
        Inst::Load {
            dst,
            addr,
            width,
            signed,
        } => Inst::Load {
            dst: r(*dst),
            addr: r(*addr),
            width: *width,
            signed: *signed,
        },
        Inst::Store { addr, src, width } => Inst::Store {
            addr: r(*addr),
            src: r(*src),
            width: *width,
        },
        Inst::Call {
            site,
            callee,
            args,
            dst,
        } => Inst::Call {
            site: fresh_ids[site],
            callee: match callee {
                Callee::Reg(reg) => Callee::Reg(r(*reg)),
                other => *other,
            },
            args: args.iter().map(|a| r(*a)).collect(),
            dst: dst.map(r),
        },
    }
}
