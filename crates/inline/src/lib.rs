//! # impact-inline — profile-guided inline function expansion
//!
//! The primary contribution of Hwu & Chang, *Inline Function Expansion for
//! Compiling C Programs* (PLDI 1989), reproduced end to end:
//!
//! 1. **Classification** ([`classify`]) — every static call site becomes
//!    *external*, *pointer*, *unsafe*, or *safe* (Tables 2–3).
//! 2. **Linearization** ([`linearize`]) — functions are ordered by
//!    descending execution count; expansion may only pull earlier
//!    functions into later ones, which minimizes the number of physical
//!    expansions (§2.7, §3.3).
//! 3. **Selection** ([`plan`]) — safe arcs are considered heaviest-first
//!    under the cost function's two hazard bounds: a code-size budget
//!    (code explosion, §2.3.1) and a frame-size bound for recursive
//!    regions (control-stack explosion, §2.3.2).
//! 4. **Physical expansion** ([`expand_plan`]) — code duplication,
//!    variable renaming, parameter buffering, and symbol-table updates
//!    (§2.4, §3.5).
//! 5. **Unreachable-function elimination** ([`eliminate_unreachable`]) —
//!    conservative function-level dead code removal (§2.6).
//!
//! The one-call driver [`inline_module`] runs all five stages and returns
//! an [`InlineReport`] with everything the paper's tables need.
//!
//! ## Example
//!
//! ```
//! use impact_cfront::{compile, Source};
//! use impact_inline::{inline_module, InlineConfig};
//! use impact_vm::{run, VmConfig};
//!
//! let mut module = compile(&[Source::new(
//!     "t.c",
//!     "int sq(int x) { return x * x; }\n\
//!      int main() { int i; int s; s = 0;\n\
//!        for (i = 0; i < 100; i++) s += sq(i);\n\
//!        return s & 0xff; }",
//! )])
//! .unwrap();
//! let baseline = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
//!
//! let report = inline_module(&mut module, &baseline.profile, &InlineConfig::default());
//! assert_eq!(report.expanded.len(), 1); // the hot sq() site
//!
//! let after = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
//! assert_eq!(after.exit_code, baseline.exit_code); // semantics preserved
//! assert!(after.profile.calls < baseline.profile.calls); // calls eliminated
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod eliminate;
mod expand;
mod linearize;
mod plan;
mod promote;
mod recover;

pub use classify::{
    classify, ClassTotals, Classification, ClassifiedSite, SiteClass, UnsafeReason,
};
pub use eliminate::eliminate_unreachable;
pub use expand::{
    expand_plan, expand_plan_with_cache, expand_site, DefCacheStats, ExpansionRecord,
};
pub use linearize::{linearize, positions_of, Linearization};
pub use plan::{plan, InlinePlan, PlanDecision, PlannedExpansion, RejectReason};
pub use promote::{promote_indirect_calls, PromotedSite};
pub use recover::{
    expand_plan_transactional, promote_indirect_calls_transactional, Incident, IncidentStage,
};

use impact_callgraph::CallGraph;
use impact_il::Module;
use impact_vm::{FaultPlan, Profile};

/// Tuning parameters of the expander.
#[derive(Clone, Debug)]
pub struct InlineConfig {
    /// Arcs below this expected execution count are *unsafe* (the paper
    /// uses 10 — §4.2's "estimated execution count less than 10").
    pub weight_threshold: u64,
    /// Code-size budget as a multiple of the original program size
    /// (§2.3.1's "upper limit as a function of the original program
    /// size").
    pub code_growth_limit: f64,
    /// Frame-size bound (bytes) for expanding into recursive regions
    /// (§2.3.2's fixed limit on control stack usage).
    pub stack_bound: u64,
    /// Linear-order heuristic (the paper's is [`Linearization::NodeWeight`]).
    pub linearization: Linearization,
    /// Whether to run conservative unreachable-function elimination after
    /// expansion.
    pub eliminate_unreachable: bool,
    /// Extension (off by default, not in the paper): promote indirect
    /// call sites whose profiled targets are dominated by one function
    /// into guarded direct calls before classification, making the hot
    /// leg inlinable (see [`promote_indirect_calls`]).
    pub promote_indirect: bool,
    /// Capacity of the simulated function-definition cache (§3.3's
    /// write-back cache of "the most recent definitions of functions").
    pub body_cache_capacity: usize,
    /// Deterministic fault-injection plan (robustness testing). Armed
    /// points such as `expand:verify` or `promote:verify` force the
    /// corresponding transaction to fail and roll back; the default plan
    /// is empty and never fires.
    pub fault: FaultPlan,
    /// Pipeline telemetry sink for sub-phase spans and counters.
    /// Disabled by default: nothing is recorded and no clock is read.
    pub obs: impact_obs::Telemetry,
    /// Record the per-site decision audit trail
    /// ([`InlineReport::decisions`]). Off by default so the planner
    /// allocates nothing extra.
    pub audit: bool,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            weight_threshold: 10,
            code_growth_limit: 2.0,
            stack_bound: 4096,
            linearization: Linearization::NodeWeight,
            eliminate_unreachable: true,
            promote_indirect: false,
            body_cache_capacity: 16,
            fault: FaultPlan::new(),
            obs: impact_obs::Telemetry::disabled(),
            audit: false,
        }
    }
}

/// One fully-resolved audit record: a call site, its classification,
/// the budget state when the planner ruled on it, and the outcome.
/// Names are resolved before unreachable elimination, so callers and
/// callees read correctly even when the callee was later removed.
#[derive(Clone, Debug)]
pub struct SiteDecision {
    /// The call site.
    pub site: impact_il::CallSiteId,
    /// Name of the calling function.
    pub caller: String,
    /// Name of the called function; `None` for pointer calls, the
    /// extern's name for external calls.
    pub callee: Option<String>,
    /// Classification of the site.
    pub class: SiteClass,
    /// Set when `class == Unsafe`.
    pub unsafe_reason: Option<UnsafeReason>,
    /// Profile weight (expected execution count) of the site.
    pub weight: u64,
    /// Whether the planner accepted the arc for expansion.
    pub accepted: bool,
    /// The planner's reject reason; `None` when accepted.
    pub reject: Option<RejectReason>,
    /// Projected module size (IL instructions) when the site was ruled
    /// on.
    pub size_at_decision: u64,
    /// Callee body size acceptance would add (0 for non-safe sites).
    pub growth: u64,
    /// The code-size budget in force.
    pub budget: u64,
    /// The frame-size bound for recursive regions in force.
    pub stack_bound: u64,
}

impl SiteDecision {
    /// Canonical accept/reject reason string, shared verbatim by the
    /// `--explain` table and the `--decisions-out` JSON so the two views
    /// agree record-for-record.
    pub fn reason(&self) -> &'static str {
        if self.accepted {
            return "expanded";
        }
        match self.reject {
            Some(RejectReason::NotSafe(SiteClass::External)) => "external: body unavailable",
            Some(RejectReason::NotSafe(SiteClass::Pointer)) => "pointer: indirect target",
            Some(RejectReason::NotSafe(SiteClass::Unsafe)) => match self.unsafe_reason {
                Some(UnsafeReason::LowWeight) => "unsafe: low-weight",
                Some(UnsafeReason::SelfRecursive) => "unsafe: self-recursive",
                Some(UnsafeReason::RecursiveStack) => "unsafe: recursive-stack",
                None => "unsafe",
            },
            Some(RejectReason::NotSafe(SiteClass::Safe)) | None => "not planned",
            Some(RejectReason::ViolatesLinearOrder) => "violates-linear-order",
            Some(RejectReason::OverBudget) => "over-budget",
        }
    }

    /// The class as the lower-case token used in reports.
    pub fn class_str(&self) -> &'static str {
        match self.class {
            SiteClass::External => "external",
            SiteClass::Pointer => "pointer",
            SiteClass::Unsafe => "unsafe",
            SiteClass::Safe => "safe",
        }
    }
}

/// Everything the driver and the table harness need to know about one
/// inlining run.
#[derive(Clone, Debug)]
pub struct InlineReport {
    /// Per-site classification (Tables 2–3).
    pub classification: Classification,
    /// The linear order used.
    pub order: Vec<impact_il::FuncId>,
    /// Arcs that were physically expanded.
    pub expanded: Vec<PlannedExpansion>,
    /// Sites rejected, with reasons.
    pub rejected: Vec<(impact_il::CallSiteId, RejectReason)>,
    /// Expansion records (original → cloned call-site maps).
    pub records: Vec<ExpansionRecord>,
    /// Static size before expansion (IL instructions).
    pub size_before: u64,
    /// The plan's exact size prediction
    /// ([`InlinePlan::predicted_final_size`]), computed before any
    /// physical expansion ran.
    pub predicted_size: u64,
    /// Measured size right after physical expansion, before unreachable
    /// elimination. Equals `predicted_size` whenever every planned arc
    /// expanded without rollback — the fuzzer's size-accounting invariant.
    pub size_expanded: u64,
    /// Static size after expansion (and elimination, if enabled).
    pub size_after: u64,
    /// Names of functions removed by unreachable elimination.
    pub removed_functions: Vec<String>,
    /// Indirect sites promoted to guarded direct calls (empty unless
    /// [`InlineConfig::promote_indirect`] is on).
    pub promoted: Vec<PromotedSite>,
    /// Simulated definition-cache statistics (§3.3).
    pub def_cache: DefCacheStats,
    /// Failures recovered from during this run (rolled-back expansions
    /// and promotions). Empty on a clean run.
    pub incidents: Vec<Incident>,
    /// The per-site decision audit trail, sorted by call-site id; empty
    /// unless [`InlineConfig::audit`] was set.
    pub decisions: Vec<SiteDecision>,
}

impl InlineReport {
    /// Static code increase as a percentage (the paper's `code inc`
    /// column of Table 4).
    pub fn code_increase_percent(&self) -> f64 {
        if self.size_before == 0 {
            return 0.0;
        }
        100.0 * (self.size_after as f64 - self.size_before as f64) / self.size_before as f64
    }
}

/// Runs the complete pipeline: build the weighted call graph, classify,
/// linearize, select, expand, and (optionally) eliminate unreachable
/// functions.
///
/// `profile` should be the **averaged** profile of representative runs
/// (see [`Profile::averaged`]); weights drive every decision.
pub fn inline_module(
    module: &mut Module,
    profile: &Profile,
    config: &InlineConfig,
) -> InlineReport {
    let size_before = module.total_size();
    let mut incidents = Vec::new();
    let mut profile_owned;
    let (profile, promoted) = if config.promote_indirect {
        let _s = config.obs.span("inline:promote");
        profile_owned = profile.clone();
        let (promoted, promote_incidents) = promote_indirect_calls_transactional(
            module,
            &mut profile_owned,
            config.weight_threshold,
            0.5,
            &config.fault,
        );
        incidents.extend(promote_incidents);
        (&profile_owned, promoted)
    } else {
        (profile, Vec::new())
    };
    let graph = CallGraph::build_with(module, profile, &config.obs);
    let classification = {
        let _s = config.obs.span("inline:classify");
        classify(module, &graph, config)
    };
    let order = {
        let _s = config.obs.span("inline:linearize");
        linearize(module, profile, config.linearization)
    };
    let plan = {
        let _s = config.obs.span("inline:plan");
        plan(module, &classification, &order, config)
    };
    let decisions = if config.audit {
        resolve_decisions(module, &classification, &plan, config)
    } else {
        Vec::new()
    };
    let predicted_size = plan.predicted_final_size(module);
    let (records, def_cache, expand_incidents) = {
        let _s = config.obs.span("inline:expand");
        expand_plan_transactional(module, &plan, config.body_cache_capacity, &config.fault)
    };
    incidents.extend(expand_incidents);
    let size_expanded = module.total_size();
    let removed_functions = if config.eliminate_unreachable {
        let _s = config.obs.span("inline:eliminate");
        eliminate_unreachable(module)
    } else {
        Vec::new()
    };
    let size_after = module.total_size();
    if config.obs.is_enabled() {
        let st = classification.static_totals();
        config.obs.count("inline:sites:external", st.external);
        config.obs.count("inline:sites:pointer", st.pointer);
        config.obs.count("inline:sites:unsafe", st.r#unsafe);
        config.obs.count("inline:sites:safe", st.safe);
        let dy = classification.dynamic_totals();
        config.obs.count("inline:dynamic:safe", dy.safe);
        config
            .obs
            .count("inline:expanded_arcs", plan.expansions.len() as u64);
        config
            .obs
            .count("inline:rejected_sites", plan.rejected.len() as u64);
        config
            .obs
            .count("inline:removed_functions", removed_functions.len() as u64);
        config.obs.count("inline:size_before", size_before);
        config.obs.count("inline:size_after", size_after);
    }
    InlineReport {
        classification,
        order: plan.order,
        expanded: plan.expansions,
        rejected: plan.rejected,
        records,
        size_before,
        predicted_size,
        size_expanded,
        size_after,
        removed_functions,
        promoted,
        def_cache,
        incidents,
        decisions,
    }
}

/// Joins the planner's raw [`PlanDecision`]s with the classification and
/// the module's symbol table into fully-named [`SiteDecision`]s, sorted
/// by call-site id. Runs before physical expansion, so names resolve
/// against the original function set.
fn resolve_decisions(
    module: &Module,
    classification: &Classification,
    plan: &InlinePlan,
    config: &InlineConfig,
) -> Vec<SiteDecision> {
    use std::collections::HashMap;
    let by_site: HashMap<_, _> = classification.sites.iter().map(|s| (s.site, s)).collect();
    let callee_names: HashMap<_, _> = module
        .all_call_sites()
        .into_iter()
        .map(|(_, site, callee)| {
            let name = match callee {
                impact_il::Callee::Func(f) => Some(module.function(f).name.clone()),
                impact_il::Callee::Ext(x) => module.externs.get(x.index()).map(|e| e.name.clone()),
                impact_il::Callee::Reg(_) => None,
            };
            (site, name)
        })
        .collect();
    let mut out: Vec<SiteDecision> = plan
        .decisions
        .iter()
        .filter_map(|d| {
            let s = by_site.get(&d.site)?;
            Some(SiteDecision {
                site: d.site,
                caller: module.function(s.caller).name.clone(),
                callee: callee_names.get(&d.site).cloned().flatten(),
                class: s.class,
                unsafe_reason: s.unsafe_reason,
                weight: s.weight,
                accepted: d.accepted,
                reject: d.reject,
                size_at_decision: d.size_at_decision,
                growth: d.growth,
                budget: d.budget,
                stack_bound: config.stack_bound,
            })
        })
        .collect();
    out.sort_by_key(|d| d.site);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, NamedFile, VmConfig};

    fn pipeline(src: &str) -> (Module, Module, InlineReport, i64, i64) {
        pipeline_with(src, &InlineConfig::default(), vec![])
    }

    fn pipeline_with(
        src: &str,
        config: &InlineConfig,
        inputs: Vec<NamedFile>,
    ) -> (Module, Module, InlineReport, i64, i64) {
        let original = compile(&[Source::new("t.c", src)]).expect("compiles");
        let base = run(&original, inputs.clone(), vec![], &VmConfig::default()).expect("runs");
        let mut inlined = original.clone();
        let report = inline_module(&mut inlined, &base.profile, config);
        impact_il::verify_module(&inlined).expect("inlined module verifies");
        let after = run(&inlined, inputs, vec![], &VmConfig::default()).expect("still runs");
        assert_eq!(
            base.stdout, after.stdout,
            "inlining changed observable output"
        );
        (original, inlined, report, base.exit_code, after.exit_code)
    }

    const HOT_LEAF: &str = "int sq(int x) { return x * x; }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 100; i++) s += sq(i); return s & 0xff; }";

    #[test]
    fn expands_hot_leaf_and_preserves_semantics() {
        let (_, inlined, report, before, after) = pipeline(HOT_LEAF);
        assert_eq!(before, after);
        assert_eq!(report.expanded.len(), 1);
        // The call is gone from main.
        let main = inlined.function(inlined.main_id().unwrap());
        assert_eq!(main.num_call_sites(), 0);
    }

    #[test]
    fn eliminates_dynamic_calls() {
        let original = compile(&[Source::new("t.c", HOT_LEAF)]).unwrap();
        let base = run(&original, vec![], vec![], &VmConfig::default()).unwrap();
        let mut inlined = original.clone();
        let _ = inline_module(&mut inlined, &base.profile, &InlineConfig::default());
        let after = run(&inlined, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(base.profile.calls, 100);
        assert_eq!(after.profile.calls, 0);
    }

    #[test]
    fn removes_unreachable_after_expansion() {
        // sq is called from one place only and nothing else references it:
        // after expansion it is unreachable and gets removed.
        let (_, inlined, report, _, _) = pipeline(HOT_LEAF);
        assert_eq!(report.removed_functions, vec!["sq".to_string()]);
        assert!(inlined.func_by_name("sq").is_none());
    }

    #[test]
    fn externals_block_function_removal() {
        let src = "extern int __fgetc(int fd);\n\
             int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; __fgetc(0);\n\
               for (i = 0; i < 100; i++) s += sq(i); return s & 0xff; }";
        let (_, inlined, report, _, _) = pipeline(src);
        assert!(report.expanded.len() == 1);
        assert!(report.removed_functions.is_empty());
        assert!(inlined.func_by_name("sq").is_some());
    }

    #[test]
    fn cold_sites_are_unsafe_and_not_expanded() {
        let src = "int rare(int x) { return x + 1; }\n\
             int main() { return rare(1); }"; // weight 1 < threshold 10
        let (_, _, report, _, _) = pipeline(src);
        assert!(report.expanded.is_empty());
        let totals = report.classification.static_totals();
        assert_eq!(totals.r#unsafe, 1);
        assert_eq!(totals.safe, 0);
    }

    #[test]
    fn threshold_is_configurable() {
        let src = "int rare(int x) { return x + 1; }\n\
             int main() { return rare(1); }";
        let config = InlineConfig {
            weight_threshold: 1,
            ..InlineConfig::default()
        };
        let (_, _, report, _, _) = pipeline_with(src, &config, vec![]);
        assert_eq!(report.expanded.len(), 1);
    }

    #[test]
    fn pointer_calls_are_classified_and_kept() {
        let src = "int twice(int x) { return 2 * x; }\n\
             int main() { int (*f)(int); int i; int s; f = twice; s = 0;\n\
               for (i = 0; i < 50; i++) s += f(i); return s & 0xff; }";
        let (_, _, report, _, _) = pipeline(src);
        let totals = report.classification.static_totals();
        assert_eq!(totals.pointer, 1);
        assert!(report.expanded.is_empty());
    }

    #[test]
    fn external_sites_are_classified() {
        let src = "extern int __fgetc(int fd);\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 20; i++) s += __fgetc(0); return s + 20; }";
        let (_, _, report, _, _) = pipeline(src);
        let totals = report.classification.static_totals();
        assert_eq!(totals.external, 1);
        let dynamic = report.classification.dynamic_totals();
        assert_eq!(dynamic.external, 20);
    }

    #[test]
    fn self_recursion_is_never_expanded() {
        let src = "int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += fact(10); return s & 0xff; }";
        let (_, _, report, before, after) = pipeline(src);
        assert_eq!(before, after);
        // The self-arc must be rejected; the main→fact arc may expand (it
        // absorbs the first iteration; recursive calls go to the original
        // copy, §2.3).
        let self_site = report
            .classification
            .sites
            .iter()
            .find(|s| s.callee == s.caller.into())
            .map(|s| s.unsafe_reason);
        assert_eq!(self_site, Some(Some(UnsafeReason::SelfRecursive)));
    }

    #[test]
    fn recursion_with_big_frames_is_stack_guarded() {
        let src = "int helper(int n) { char big[100000]; big[0] = n; return big[0]; }\n\
             int recur(int n) { return n == 0 ? 0 : recur(n - 1) + helper(n); }\n\
             int main() { return recur(50); }";
        let (_, _, report, _, _) = pipeline(src);
        // The recur→helper arc would put a 100 KB frame into a recursion.
        let blocked = report
            .classification
            .sites
            .iter()
            .any(|s| s.unsafe_reason == Some(UnsafeReason::RecursiveStack));
        assert!(blocked);
    }

    #[test]
    fn mutual_recursion_absorbs_one_direction_only() {
        let src = "int odd(int n);\n\
             int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n\
             int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 30; i++) s += even(i); return s; }";
        let (_, _, report, before, after) = pipeline(src);
        assert_eq!(before, after);
        // The linear order permits at most one of even→odd / odd→even.
        assert!(report.expanded.len() <= 2);
    }

    #[test]
    fn budget_limits_expansion() {
        // Many distinct hot call sites of a large callee: a tight budget
        // must reject some.
        let src = "int f(int x) {\n\
               int a; a = x;\n\
               a += a * 3; a ^= a >> 2; a += a * 5; a ^= a >> 3;\n\
               a += a * 7; a ^= a >> 4; a += a * 11; a ^= a >> 5;\n\
               return a;\n\
             }\n\
             int main() {\n\
               int i; int s; s = 0;\n\
               for (i = 0; i < 20; i++) {\n\
                 s += f(i); s += f(i + 1); s += f(i + 2); s += f(i + 3);\n\
                 s += f(i + 4); s += f(i + 5); s += f(i + 6); s += f(i + 7);\n\
               }\n\
               return s & 0xff;\n\
             }";
        let tight = InlineConfig {
            code_growth_limit: 1.6,
            ..InlineConfig::default()
        };
        let (_, _, report, before, after) = pipeline_with(src, &tight, vec![]);
        assert_eq!(before, after);
        assert!(
            report
                .rejected
                .iter()
                .any(|(_, r)| *r == RejectReason::OverBudget),
            "tight budget should reject some arcs: {:?}",
            report.rejected
        );
        assert!(!report.expanded.is_empty(), "but not all of them");
        // The realized size respects the budget.
        let limit = (report.size_before as f64 * tight.code_growth_limit) as u64;
        // Elimination may shrink below; before elimination the projected
        // size was within budget. Realized size may differ slightly from
        // projection (movs/jumps), so allow 10% slack.
        assert!(
            report.size_after as f64 <= limit as f64 * 1.1,
            "size_after={} limit={}",
            report.size_after,
            limit
        );
    }

    #[test]
    fn transitive_inlining_through_linear_order() {
        // leaf is hotter than mid, mid hotter than main: order should be
        // leaf, mid, main, and mid's copy inside main already contains
        // leaf.
        let src = "int leaf(int x) { return x + 1; }\n\
             int mid(int x) { return leaf(x) + leaf(x + 1); }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += mid(i); return s & 0xff; }";
        let (_, inlined, report, before, after) = pipeline(src);
        assert_eq!(before, after);
        // All three arcs expanded (leaf→mid twice, mid→main once).
        assert_eq!(report.expanded.len(), 3);
        // Everything folded into main; no calls remain anywhere reachable.
        let main = inlined.function(inlined.main_id().unwrap());
        assert_eq!(main.num_call_sites(), 0);
        // And both helpers were removed as unreachable.
        assert_eq!(inlined.functions.len(), 1);
    }

    #[test]
    fn code_increase_percent_is_reported() {
        let (_, _, report, _, _) = pipeline(HOT_LEAF);
        // sq was absorbed and removed; size change should be modest.
        let pct = report.code_increase_percent();
        assert!(pct > -60.0 && pct < 60.0, "pct={pct}");
        assert!(report.size_before > 0 && report.size_after > 0);
    }

    #[test]
    fn expansion_keeps_io_behaviour() {
        let src = "extern int __fgetc(int fd);\n\
             extern int __fputc(int c, int fd);\n\
             int upper(int c) { return c >= 'a' && c <= 'z' ? c - 32 : c; }\n\
             int main() { int c; while ((c = __fgetc(0)) != -1) __fputc(upper(c), 1); return 0; }";
        let (_, _, report, _, _) = pipeline_with(
            src,
            &InlineConfig::default(),
            vec![NamedFile::new("stdin", b"Hello, World! 123".to_vec())],
        );
        assert_eq!(report.expanded.len(), 1);
    }

    #[test]
    fn random_linearization_still_preserves_semantics() {
        for seed in 0..5 {
            let config = InlineConfig {
                linearization: Linearization::Random(seed),
                ..InlineConfig::default()
            };
            let (_, _, _, before, after) = pipeline_with(HOT_LEAF, &config, vec![]);
            assert_eq!(before, after, "seed {seed}");
        }
    }

    #[test]
    fn reverse_linearization_blocks_expansion_of_hot_leaves() {
        let config = InlineConfig {
            linearization: Linearization::ReverseNodeWeight,
            ..InlineConfig::default()
        };
        let (_, _, report, _, _) = pipeline_with(HOT_LEAF, &config, vec![]);
        // main (weight 1) now precedes sq (weight 100): sq→main violates
        // the order.
        assert!(report.expanded.is_empty());
        assert!(report
            .rejected
            .iter()
            .any(|(_, r)| *r == RejectReason::ViolatesLinearOrder));
    }

    #[test]
    fn cloned_call_sites_get_fresh_ids() {
        let src = "int leaf(int x) { return x + 3; }\n\
             int shell(int x) { return leaf(x) * 2; }\n\
             int main() { int i; int s; s = 0;\n\
               for (i = 0; i < 25; i++) s += shell(i) + leaf(i);\n\
               return s & 0xff; }";
        let (original, inlined, report, _, _) = pipeline(src);
        impact_il::verify_module(&inlined).unwrap();
        // Records map original sites to clones; cloned ids must be beyond
        // the original module's id range... and unique (the verifier
        // already enforces uniqueness).
        for rec in &report.records {
            for (orig, clone) in &rec.cloned_sites {
                assert!(clone.0 >= original.call_site_limit());
                assert_ne!(orig, clone);
            }
        }
    }

    #[test]
    fn struct_and_array_slots_survive_inlining() {
        let src = "struct acc { int lo; int hi; };\n\
             int sum_digits(int x) {\n\
               char buf[16]; int n; int s;\n\
               n = 0;\n\
               while (x > 0) { buf[n++] = x % 10; x /= 10; }\n\
               s = 0;\n\
               while (n > 0) s += buf[--n];\n\
               return s;\n\
             }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 50; i++) s += sum_digits(i * 37); return s & 0xff; }";
        let (_, inlined, report, before, after) = pipeline(src);
        assert_eq!(before, after);
        assert_eq!(report.expanded.len(), 1);
        // The absorbed slot is path-qualified.
        let main = inlined.function(inlined.main_id().unwrap());
        assert!(main.slots.iter().any(|s| s.name == "sum_digits.buf"));
    }

    #[test]
    fn size_prediction_matches_physical_growth() {
        for src in [HOT_LEAF, CHAIN_FOR_PREDICTION] {
            let (_, _, report, _, _) = pipeline(src);
            assert!(!report.expanded.is_empty());
            assert_eq!(
                report.predicted_size, report.size_expanded,
                "exact prediction must match the measured post-expansion size"
            );
            // Elimination can only shrink from there.
            assert!(report.size_after <= report.size_expanded);
        }
    }

    const CHAIN_FOR_PREDICTION: &str = "int leaf(int x) { return x + 1; }\n\
         int mid(int x) { return leaf(x) + leaf(x + 1); }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += mid(i); return s & 0xff; }";

    #[test]
    fn rolled_back_expansion_breaks_the_size_prediction() {
        // A rollback leaves the plan partially executed: the prediction
        // (computed for the full plan) must now overshoot the measured
        // size — exactly the mismatch the fuzzer's oracle alarms on.
        let fault = impact_vm::FaultPlan::new();
        fault.arm_spec("expand:verify").unwrap();
        let config = InlineConfig {
            fault,
            eliminate_unreachable: false,
            ..InlineConfig::default()
        };
        let (_, _, report, before, after) = pipeline_with(HOT_LEAF, &config, vec![]);
        assert_eq!(before, after, "rollback preserves behavior");
        assert!(!report.incidents.is_empty());
        assert!(
            report.predicted_size > report.size_expanded,
            "predicted {} vs expanded {}",
            report.predicted_size,
            report.size_expanded
        );
    }

    const ALL_CLASSES: &str = "extern int __fgetc(int fd);\n\
         int hot(int x) { return x + 1; }\n\
         int rare(int x) { return x - 1; }\n\
         int main() { int (*p)(int); int i; int s; p = hot; s = __fgetc(0) + rare(1);\n\
           for (i = 0; i < 40; i++) s += hot(i) + p(i);\n\
           return s & 0xff; }";

    #[test]
    fn audit_trail_covers_every_site_with_all_classes() {
        let config = InlineConfig {
            audit: true,
            ..InlineConfig::default()
        };
        let (original, _, report, _, _) = pipeline_with(ALL_CLASSES, &config, vec![]);
        // One decision per static call site, sorted by site id.
        assert_eq!(report.decisions.len(), original.all_call_sites().len());
        assert!(report.decisions.windows(2).all(|w| w[0].site < w[1].site));
        // All four classes appear.
        for class in ["external", "pointer", "unsafe", "safe"] {
            assert!(
                report.decisions.iter().any(|d| d.class_str() == class),
                "missing class {class}"
            );
        }
        // Accepted decisions match the expansion list exactly.
        let accepted: Vec<_> = report
            .decisions
            .iter()
            .filter(|d| d.accepted)
            .map(|d| d.site)
            .collect();
        let mut expanded: Vec<_> = report.expanded.iter().map(|e| e.site).collect();
        expanded.sort();
        assert_eq!(accepted, expanded);
        // Reasons are the canonical strings; budget state is populated.
        for d in &report.decisions {
            assert!(!d.reason().is_empty());
            assert!(d.budget > 0);
            assert!(d.size_at_decision > 0);
            if d.accepted {
                assert_eq!(d.reason(), "expanded");
                assert!(d.growth > 0);
            }
        }
        let unsafe_d = report
            .decisions
            .iter()
            .find(|d| d.class == SiteClass::Unsafe)
            .unwrap();
        assert_eq!(unsafe_d.reason(), "unsafe: low-weight");
        assert_eq!(unsafe_d.callee.as_deref(), Some("rare"));
        let ext = report
            .decisions
            .iter()
            .find(|d| d.class == SiteClass::External)
            .unwrap();
        assert_eq!(ext.callee.as_deref(), Some("__fgetc"));
        let ptr = report
            .decisions
            .iter()
            .find(|d| d.class == SiteClass::Pointer)
            .unwrap();
        assert!(ptr.callee.is_none());
    }

    #[test]
    fn audit_off_records_no_decisions() {
        let (_, _, report, _, _) = pipeline(ALL_CLASSES);
        assert!(report.decisions.is_empty());
    }

    #[test]
    fn telemetry_records_sub_phase_spans_and_counters() {
        let obs = impact_obs::Telemetry::enabled();
        let config = InlineConfig {
            obs: obs.clone(),
            ..InlineConfig::default()
        };
        let (_, _, _, _, _) = pipeline_with(HOT_LEAF, &config, vec![]);
        let m = obs.snapshot();
        let names: Vec<_> = m.spans.iter().map(|s| s.name.as_str()).collect();
        for want in [
            "callgraph:build",
            "inline:classify",
            "inline:linearize",
            "inline:plan",
            "inline:expand",
            "inline:eliminate",
        ] {
            assert!(names.contains(&want), "missing span {want}: {names:?}");
        }
        assert_eq!(m.counters.get("inline:expanded_arcs"), Some(&1));
    }

    #[test]
    fn disabled_elimination_keeps_functions() {
        let config = InlineConfig {
            eliminate_unreachable: false,
            ..InlineConfig::default()
        };
        let (_, inlined, report, _, _) = pipeline_with(HOT_LEAF, &config, vec![]);
        assert!(report.removed_functions.is_empty());
        assert!(inlined.func_by_name("sq").is_some());
    }
}

#[cfg(test)]
mod def_cache_tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    /// A chain of hot helpers: with the paper's linear order, each
    /// definition is touched in a tight window, so even a tiny cache
    /// hits most of the time.
    const CHAIN: &str = "int l1(int x) { return x + 1; }\n\
         int l2(int x) { return l1(x) * 2; }\n\
         int l3(int x) { return l2(x) + l1(x); }\n\
         int l4(int x) { return l3(x) ^ l2(x); }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 50; i++) s += l4(i); return s & 0x7f; }";

    #[test]
    fn definition_cache_reports_locality() {
        let module = compile(&[Source::new("t.c", CHAIN)]).unwrap();
        let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let mut m = module.clone();
        let report = inline_module(
            &mut m,
            &out.profile.averaged(),
            &InlineConfig {
                weight_threshold: 1,
                ..InlineConfig::default()
            },
        );
        let stats = report.def_cache;
        assert!(stats.hits + stats.misses > 0, "cache was exercised");
        // With capacity 16 > 5 functions, only cold misses occur.
        assert!(stats.misses <= 5, "misses {}", stats.misses);
        assert!(stats.hit_ratio() > 0.4, "hit ratio {}", stats.hit_ratio());
        // Dirty callers get written back exactly once each at the end.
        assert!(stats.writebacks >= 1);
    }

    #[test]
    fn tiny_cache_thrashes_more_than_big_cache() {
        let module = compile(&[Source::new("t.c", CHAIN)]).unwrap();
        let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let misses_at = |cap: usize| {
            let mut m = module.clone();
            let report = inline_module(
                &mut m,
                &out.profile.averaged(),
                &InlineConfig {
                    weight_threshold: 1,
                    body_cache_capacity: cap,
                    ..InlineConfig::default()
                },
            );
            report.def_cache.misses
        };
        assert!(misses_at(1) > misses_at(16));
    }
}
