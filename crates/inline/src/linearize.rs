//! Linearization of the call graph (§3.3).
//!
//! Inline expansion is constrained to follow a linear order over the
//! functions: X may be inlined into Y only if X precedes Y. This bounds
//! the number of physical expansions (every expansion of X happens before
//! Y is processed, so Y absorbs a *fully expanded* X in one step) and
//! enables the function-definition cache with write-back replacement the
//! paper uses to cut file traffic.
//!
//! The paper's heuristic places functions randomly, then sorts by
//! execution count, most frequent first — frequently executed functions
//! are usually the callees of less frequently executed ones. Alternative
//! orders are provided for the ablation benchmarks.

use impact_il::{FuncId, Module};
use impact_vm::Profile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The order-selection heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linearization {
    /// The paper's heuristic: sort by node weight, heaviest first
    /// (deterministic tie-break by function id).
    NodeWeight,
    /// Reverse of the paper's order — an adversarial ablation.
    ReverseNodeWeight,
    /// A seeded random shuffle — the ablation baseline.
    Random(u64),
    /// Module definition order (no reordering).
    SourceOrder,
}

/// Computes the linear sequence of all functions under `strategy`.
///
/// The returned vector maps position → function; use [`positions_of`] for
/// the inverse.
pub fn linearize(module: &Module, profile: &Profile, strategy: Linearization) -> Vec<FuncId> {
    let mut order: Vec<FuncId> = (0..module.functions.len())
        .map(FuncId::from_index)
        .collect();
    match strategy {
        Linearization::NodeWeight => {
            order.sort_by(|a, b| {
                profile
                    .func_weight(*b)
                    .cmp(&profile.func_weight(*a))
                    .then(a.cmp(b))
            });
        }
        Linearization::ReverseNodeWeight => {
            order.sort_by(|a, b| {
                profile
                    .func_weight(*a)
                    .cmp(&profile.func_weight(*b))
                    .then(a.cmp(b))
            });
        }
        Linearization::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        Linearization::SourceOrder => {}
    }
    order
}

/// Inverts a linear order into a position table indexed by [`FuncId`].
pub fn positions_of(order: &[FuncId], num_funcs: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; num_funcs];
    for (i, f) in order.iter().enumerate() {
        pos[f.index()] = i;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::Function;

    fn module_and_profile(weights: &[u64]) -> (Module, Profile) {
        let mut m = Module::new();
        for (i, _) in weights.iter().enumerate() {
            m.add_function(Function::new(format!("f{i}"), 0));
        }
        let mut p = Profile::for_module(&m);
        p.func_entries.copy_from_slice(weights);
        (m, p)
    }

    #[test]
    fn node_weight_order_is_heaviest_first() {
        let (m, p) = module_and_profile(&[5, 100, 20, 100]);
        let order = linearize(&m, &p, Linearization::NodeWeight);
        assert_eq!(
            order,
            vec![FuncId(1), FuncId(3), FuncId(2), FuncId(0)],
            "ties break by id"
        );
    }

    #[test]
    fn reverse_order_is_lightest_first() {
        let (m, p) = module_and_profile(&[5, 100, 20]);
        let order = linearize(&m, &p, Linearization::ReverseNodeWeight);
        assert_eq!(order, vec![FuncId(0), FuncId(2), FuncId(1)]);
    }

    #[test]
    fn random_order_is_seeded_and_complete() {
        let (m, p) = module_and_profile(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a = linearize(&m, &p, Linearization::Random(42));
        let b = linearize(&m, &p, Linearization::Random(42));
        let c = linearize(&m, &p, Linearization::Random(43));
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, c, "different seed, different order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..8).map(FuncId).collect::<Vec<_>>());
    }

    #[test]
    fn positions_invert_the_order() {
        let (m, p) = module_and_profile(&[5, 100, 20]);
        let order = linearize(&m, &p, Linearization::NodeWeight);
        let pos = positions_of(&order, 3);
        for (i, f) in order.iter().enumerate() {
            assert_eq!(pos[f.index()], i);
        }
    }

    #[test]
    fn source_order_is_identity() {
        let (m, p) = module_and_profile(&[9, 1, 5]);
        let order = linearize(&m, &p, Linearization::SourceOrder);
        assert_eq!(order, vec![FuncId(0), FuncId(1), FuncId(2)]);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use impact_il::Function;
    use proptest::prelude::*;

    fn module_and_profile(weights: &[u64]) -> (Module, Profile) {
        let mut m = Module::new();
        for (i, _) in weights.iter().enumerate() {
            m.add_function(Function::new(format!("f{i}"), 0));
        }
        let mut p = Profile::for_module(&m);
        p.func_entries.copy_from_slice(weights);
        (m, p)
    }

    proptest! {
        #[test]
        fn node_weight_order_is_a_sorted_permutation(
            weights in proptest::collection::vec(0u64..64, 1..16),
        ) {
            let (m, p) = module_and_profile(&weights);
            let order = linearize(&m, &p, Linearization::NodeWeight);
            // Permutation: every function exactly once.
            let mut seen = order.clone();
            seen.sort();
            prop_assert_eq!(
                seen,
                (0..weights.len()).map(FuncId::from_index).collect::<Vec<_>>()
            );
            // Sorted by descending node weight, ties broken by ascending
            // function id — a strict total order, hence deterministic.
            for w in order.windows(2) {
                let (a, b) = (w[0], w[1]);
                let (wa, wb) = (p.func_weight(a), p.func_weight(b));
                prop_assert!(
                    wa > wb || (wa == wb && a < b),
                    "order violation: {a:?}(w={wa}) before {b:?}(w={wb})"
                );
            }
        }

        #[test]
        fn node_weight_order_is_deterministic(
            weights in proptest::collection::vec(0u64..8, 1..16),
        ) {
            // Heavy on ties (weights drawn from a tiny range): two
            // computations must still agree exactly.
            let (m, p) = module_and_profile(&weights);
            let a = linearize(&m, &p, Linearization::NodeWeight);
            let b = linearize(&m, &p, Linearization::NodeWeight);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn positions_of_inverts_every_strategy(
            weights in proptest::collection::vec(0u64..64, 1..16),
            seed in 0u64..32,
        ) {
            let (m, p) = module_and_profile(&weights);
            for strategy in [
                Linearization::NodeWeight,
                Linearization::ReverseNodeWeight,
                Linearization::Random(seed),
                Linearization::SourceOrder,
            ] {
                let order = linearize(&m, &p, strategy);
                let pos = positions_of(&order, weights.len());
                for (i, f) in order.iter().enumerate() {
                    prop_assert_eq!(pos[f.index()], i);
                }
            }
        }
    }
}

#[cfg(test)]
mod expanded_arc_tests {
    use super::*;
    use crate::{inline_module, InlineConfig};
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    #[test]
    fn no_expanded_arc_violates_the_linear_order() {
        // A call-heavy program with a transitive chain, fan-out, and
        // recursion: every physically expanded arc must point from an
        // earlier (callee) to a later (caller) position in the order.
        let src = "int l1(int x) { return x + 1; }\n\
             int l2(int x) { return l1(x) * 2; }\n\
             int l3(int x) { return l2(x) + l1(x + 2); }\n\
             int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }\n\
             int main() { int i; int s; s = 0;\n\
               for (i = 0; i < 50; i++) { s += l3(i); s += l2(i); }\n\
               s += fact(12);\n\
               return s & 0xff; }";
        let module = compile(&[Source::new("t.c", src)]).unwrap();
        let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let mut m = module.clone();
        let report = inline_module(&mut m, &out.profile, &InlineConfig::default());
        assert!(report.records.len() >= 3, "expected a real expansion set");
        let pos = positions_of(&report.order, module.functions.len());
        for r in &report.records {
            assert!(
                pos[r.callee.index()] < pos[r.caller.index()],
                "expanded arc {:?} -> {:?} violates the linear order {:?}",
                r.callee,
                r.caller,
                report.order
            );
        }
    }
}
