//! Linearization of the call graph (§3.3).
//!
//! Inline expansion is constrained to follow a linear order over the
//! functions: X may be inlined into Y only if X precedes Y. This bounds
//! the number of physical expansions (every expansion of X happens before
//! Y is processed, so Y absorbs a *fully expanded* X in one step) and
//! enables the function-definition cache with write-back replacement the
//! paper uses to cut file traffic.
//!
//! The paper's heuristic places functions randomly, then sorts by
//! execution count, most frequent first — frequently executed functions
//! are usually the callees of less frequently executed ones. Alternative
//! orders are provided for the ablation benchmarks.

use impact_il::{FuncId, Module};
use impact_vm::Profile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The order-selection heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linearization {
    /// The paper's heuristic: sort by node weight, heaviest first
    /// (deterministic tie-break by function id).
    NodeWeight,
    /// Reverse of the paper's order — an adversarial ablation.
    ReverseNodeWeight,
    /// A seeded random shuffle — the ablation baseline.
    Random(u64),
    /// Module definition order (no reordering).
    SourceOrder,
}

/// Computes the linear sequence of all functions under `strategy`.
///
/// The returned vector maps position → function; use [`positions_of`] for
/// the inverse.
pub fn linearize(module: &Module, profile: &Profile, strategy: Linearization) -> Vec<FuncId> {
    let mut order: Vec<FuncId> = (0..module.functions.len())
        .map(FuncId::from_index)
        .collect();
    match strategy {
        Linearization::NodeWeight => {
            order.sort_by(|a, b| {
                profile
                    .func_weight(*b)
                    .cmp(&profile.func_weight(*a))
                    .then(a.cmp(b))
            });
        }
        Linearization::ReverseNodeWeight => {
            order.sort_by(|a, b| {
                profile
                    .func_weight(*a)
                    .cmp(&profile.func_weight(*b))
                    .then(a.cmp(b))
            });
        }
        Linearization::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        Linearization::SourceOrder => {}
    }
    order
}

/// Inverts a linear order into a position table indexed by [`FuncId`].
pub fn positions_of(order: &[FuncId], num_funcs: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; num_funcs];
    for (i, f) in order.iter().enumerate() {
        pos[f.index()] = i;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::Function;

    fn module_and_profile(weights: &[u64]) -> (Module, Profile) {
        let mut m = Module::new();
        for (i, _) in weights.iter().enumerate() {
            m.add_function(Function::new(format!("f{i}"), 0));
        }
        let mut p = Profile::for_module(&m);
        p.func_entries.copy_from_slice(weights);
        (m, p)
    }

    #[test]
    fn node_weight_order_is_heaviest_first() {
        let (m, p) = module_and_profile(&[5, 100, 20, 100]);
        let order = linearize(&m, &p, Linearization::NodeWeight);
        assert_eq!(
            order,
            vec![FuncId(1), FuncId(3), FuncId(2), FuncId(0)],
            "ties break by id"
        );
    }

    #[test]
    fn reverse_order_is_lightest_first() {
        let (m, p) = module_and_profile(&[5, 100, 20]);
        let order = linearize(&m, &p, Linearization::ReverseNodeWeight);
        assert_eq!(order, vec![FuncId(0), FuncId(2), FuncId(1)]);
    }

    #[test]
    fn random_order_is_seeded_and_complete() {
        let (m, p) = module_and_profile(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a = linearize(&m, &p, Linearization::Random(42));
        let b = linearize(&m, &p, Linearization::Random(42));
        let c = linearize(&m, &p, Linearization::Random(43));
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, c, "different seed, different order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..8).map(FuncId).collect::<Vec<_>>());
    }

    #[test]
    fn positions_invert_the_order() {
        let (m, p) = module_and_profile(&[5, 100, 20]);
        let order = linearize(&m, &p, Linearization::NodeWeight);
        let pos = positions_of(&order, 3);
        for (i, f) in order.iter().enumerate() {
            assert_eq!(pos[f.index()], i);
        }
    }

    #[test]
    fn source_order_is_identity() {
        let (m, p) = module_and_profile(&[9, 1, 5]);
        let order = linearize(&m, &p, Linearization::SourceOrder);
        assert_eq!(order, vec![FuncId(0), FuncId(1), FuncId(2)]);
    }
}
