//! Expansion-site selection (§3.4) and the cost function (§2.3.3).
//!
//! Arcs that violate the linear order or touch the special nodes are
//! marked `not_expandable`; the rest are considered from the most to the
//! least frequently executed, accepting each arc whose cost is finite —
//! i.e. it passes the stack-explosion check and fits the remaining code-
//! size budget. Function sizes are re-evaluated after every acceptance,
//! exactly as §3.4 requires ("the code size of each function body must be
//! re-evaluated as new function calls are considered for expansion").

use impact_il::{CallSiteId, FuncId, Inst, Module, Terminator};

use crate::classify::{Classification, SiteClass};
use crate::linearize::positions_of;
use crate::InlineConfig;

/// Why a site was not selected for expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Not classified safe (external / pointer / unsafe).
    NotSafe(SiteClass),
    /// The callee does not precede the caller in the linear order.
    ViolatesLinearOrder,
    /// Accepting this arc would exceed the code-size budget.
    OverBudget,
}

/// Budget state captured at the moment the planner ruled on one call
/// site — the raw material of the inline-decision audit trail
/// (`impactc inline --explain` / `--decisions-out`). Only recorded when
/// [`InlineConfig::audit`] is set; the vector stays unallocated
/// otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanDecision {
    /// The call site ruled on.
    pub site: CallSiteId,
    /// Whether the arc was accepted for expansion.
    pub accepted: bool,
    /// The reject reason; `None` when accepted.
    pub reject: Option<RejectReason>,
    /// Projected total module size when the site was considered.
    pub size_at_decision: u64,
    /// Callee body size acceptance would add (0 for non-safe sites,
    /// which are rejected before sizing).
    pub growth: u64,
    /// The code-size budget in force.
    pub budget: u64,
}

/// One accepted arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedExpansion {
    /// The call site to expand.
    pub site: CallSiteId,
    /// Caller (the function absorbing the body).
    pub caller: FuncId,
    /// Callee (the function being duplicated).
    pub callee: FuncId,
    /// Arc weight, for reporting.
    pub weight: u64,
}

/// The outcome of expansion-site selection.
#[derive(Clone, Debug)]
pub struct InlinePlan {
    /// The linear sequence the physical expansion must follow.
    pub order: Vec<FuncId>,
    /// Accepted arcs, in the order they were accepted (descending
    /// weight).
    pub expansions: Vec<PlannedExpansion>,
    /// Rejected sites with reasons (every site not in `expansions`).
    pub rejected: Vec<(CallSiteId, RejectReason)>,
    /// Projected total size after expansion, in IL instructions.
    pub projected_size: u64,
    /// The size budget that applied.
    pub budget: u64,
    /// Per-site audit records in planner consideration order; empty
    /// unless [`InlineConfig::audit`] is set.
    pub decisions: Vec<PlanDecision>,
}

/// Selects the arcs to expand.
///
/// `order` comes from [`crate::linearize`]; `classification` from
/// [`crate::classify`]. The budget is
/// `original_size * config.code_growth_limit`.
pub fn plan(
    module: &Module,
    classification: &Classification,
    order: &[FuncId],
    config: &InlineConfig,
) -> InlinePlan {
    let pos = positions_of(order, module.functions.len());
    let original_size = module.total_size();
    let budget = (original_size as f64 * config.code_growth_limit).floor() as u64;

    // Current size estimate per function, updated as arcs are accepted.
    let mut sizes: Vec<u64> = module.functions.iter().map(|f| f.size()).collect();
    let mut total: u64 = original_size;

    let mut expansions = Vec::new();
    let mut rejected = Vec::new();
    // `Vec::new()` does not allocate; decisions are only pushed (and the
    // vector only grows) when the audit trail was requested.
    let mut decisions = Vec::new();

    // Non-safe arcs are rejected outright.
    for s in &classification.sites {
        if s.class != SiteClass::Safe {
            rejected.push((s.site, RejectReason::NotSafe(s.class)));
            if config.audit {
                decisions.push(PlanDecision {
                    site: s.site,
                    accepted: false,
                    reject: Some(RejectReason::NotSafe(s.class)),
                    size_at_decision: total,
                    growth: 0,
                    budget,
                });
            }
        }
    }

    // Safe arcs, most frequently executed first.
    for s in classification.safe_sites_by_weight() {
        let callee = s.callee.expect("safe sites have direct callees");
        let size_at_decision = total;
        // The linear-order constraint: callee strictly before caller.
        if pos[callee.index()] >= pos[s.caller.index()] {
            rejected.push((s.site, RejectReason::ViolatesLinearOrder));
            if config.audit {
                decisions.push(PlanDecision {
                    site: s.site,
                    accepted: false,
                    reject: Some(RejectReason::ViolatesLinearOrder),
                    size_at_decision,
                    growth: sizes[callee.index()],
                    budget,
                });
            }
            continue;
        }
        // Code-expansion hazard: the caller absorbs a copy of the callee
        // (at its *current*, possibly already-grown size).
        let growth = sizes[callee.index()];
        if total + growth > budget {
            rejected.push((s.site, RejectReason::OverBudget));
            if config.audit {
                decisions.push(PlanDecision {
                    site: s.site,
                    accepted: false,
                    reject: Some(RejectReason::OverBudget),
                    size_at_decision,
                    growth,
                    budget,
                });
            }
            continue;
        }
        sizes[s.caller.index()] += growth;
        total += growth;
        expansions.push(PlannedExpansion {
            site: s.site,
            caller: s.caller,
            callee,
            weight: s.weight,
        });
        if config.audit {
            decisions.push(PlanDecision {
                site: s.site,
                accepted: true,
                reject: None,
                size_at_decision,
                growth,
                budget,
            });
        }
    }

    InlinePlan {
        order: order.to_vec(),
        expansions,
        rejected,
        projected_size: total,
        budget,
        decisions,
    }
}

impl InlinePlan {
    /// Total dynamic calls the accepted arcs account for (the predicted
    /// upper bound of eliminated calls).
    pub fn planned_dynamic_calls(&self) -> u64 {
        self.expansions.iter().map(|e| e.weight).sum()
    }

    /// Flattens the plan into execution order: callers in linear order
    /// (every callee is complete before any caller absorbs it), and
    /// within a caller heaviest arc first, matching selection order.
    pub fn execution_order(&self) -> Vec<&PlannedExpansion> {
        let mut by_caller: std::collections::HashMap<FuncId, Vec<&PlannedExpansion>> =
            std::collections::HashMap::new();
        for e in &self.expansions {
            by_caller.entry(e.caller).or_default().push(e);
        }
        let mut out = Vec::with_capacity(self.expansions.len());
        for &func in &self.order {
            let Some(expansions) = by_caller.get(&func) else {
                continue;
            };
            let mut sorted = expansions.clone();
            sorted.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.site.cmp(&b.site)));
            out.extend(sorted);
        }
        out
    }

    /// The *exact* module size (IL instructions) after this plan is
    /// physically executed by [`crate::expand_plan`], computed by
    /// simulating [`InlinePlan::execution_order`] with the expander's real
    /// arithmetic. Absorbing a callee grows the caller by the callee's
    /// *current* simulated size, plus one parameter-buffering `Mov` per
    /// actual argument, plus — when the call reads a result — one
    /// value-funneling instruction per `Return`-terminated block of the
    /// callee; the removed `Call` instruction and the continuation
    /// block's new terminator cancel exactly. `Return`-block counts are
    /// invariant under expansion (cloned returns become jumps), so the
    /// original module's counts stay valid throughout the simulation.
    ///
    /// This is the oracle the fuzzer's size-accounting invariant checks
    /// against: it must equal `Module::total_size()` after a rollback-free
    /// expansion, *before* unreachable elimination. (`projected_size` is
    /// the coarser budget-time estimate, which ignores the per-site mov
    /// overhead.)
    ///
    /// # Panics
    ///
    /// Panics if the plan refers to sites absent from `module` — plans
    /// are only valid for the module they were computed from.
    pub fn predicted_final_size(&self, module: &Module) -> u64 {
        let mut sizes: Vec<u64> = module.functions.iter().map(|f| f.size()).collect();
        let ret_blocks: Vec<u64> = module
            .functions
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .filter(|b| matches!(b.term, Terminator::Return(_)))
                    .count() as u64
            })
            .collect();
        let mut site_shape: std::collections::HashMap<CallSiteId, (u64, bool)> =
            std::collections::HashMap::new();
        for f in &module.functions {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Inst::Call {
                        site, args, dst, ..
                    } = inst
                    {
                        site_shape.insert(*site, (args.len() as u64, dst.is_some()));
                    }
                }
            }
        }
        for e in self.execution_order() {
            let (nargs, has_dst) = site_shape[&e.site];
            let retfix = if has_dst {
                ret_blocks[e.callee.index()]
            } else {
                0
            };
            sizes[e.caller.index()] += sizes[e.callee.index()] + nargs + retfix;
        }
        sizes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::linearize::{linearize, Linearization};
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    fn plan_for(src: &str, config: &InlineConfig) -> (Module, InlinePlan) {
        let module = compile(&[Source::new("t.c", src)]).expect("compiles");
        let out = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
        let profile = out.profile.averaged();
        let graph = impact_callgraph::CallGraph::build(&module, &profile);
        let classification = classify(&module, &graph, config);
        let order = linearize(&module, &profile, Linearization::NodeWeight);
        let p = plan(&module, &classification, &order, config);
        (module, p)
    }

    const TWO_HOT: &str = "int a(int x) { return x + 1; }\n\
         int b(int x) { return x * 2; }\n\
         int main() {\n\
           int i; int s; s = 0;\n\
           for (i = 0; i < 60; i++) s += a(i);\n\
           for (i = 0; i < 40; i++) s += b(i);\n\
           return s & 0xff;\n\
         }";

    #[test]
    fn accepts_heaviest_arcs_first() {
        let (module, p) = plan_for(TWO_HOT, &InlineConfig::default());
        assert_eq!(p.expansions.len(), 2);
        assert!(p.expansions[0].weight >= p.expansions[1].weight);
        assert_eq!(module.function(p.expansions[0].callee).name, "a");
    }

    #[test]
    fn every_site_is_either_expanded_or_rejected() {
        let (module, p) = plan_for(TWO_HOT, &InlineConfig::default());
        let total = module.all_call_sites().len();
        assert_eq!(p.expansions.len() + p.rejected.len(), total);
    }

    #[test]
    fn projection_stays_within_budget() {
        for limit in [1.1f64, 1.5, 2.0] {
            let config = InlineConfig {
                code_growth_limit: limit,
                ..InlineConfig::default()
            };
            let (_, p) = plan_for(TWO_HOT, &config);
            assert!(
                p.projected_size <= p.budget,
                "limit {limit}: projected {} > budget {}",
                p.projected_size,
                p.budget
            );
        }
    }

    #[test]
    fn tight_budget_rejects_over_budget() {
        let config = InlineConfig {
            code_growth_limit: 1.0,
            ..InlineConfig::default()
        };
        let (_, p) = plan_for(TWO_HOT, &config);
        assert!(p.expansions.is_empty());
        assert!(p
            .rejected
            .iter()
            .any(|(_, r)| *r == RejectReason::OverBudget));
    }

    #[test]
    fn planned_dynamic_calls_sums_weights() {
        let (_, p) = plan_for(TWO_HOT, &InlineConfig::default());
        assert_eq!(p.planned_dynamic_calls(), 100);
    }

    #[test]
    fn predicted_final_size_matches_physical_expansion() {
        // Transitive chains, multi-return callees, and result-free calls:
        // every term of the growth formula gets exercised.
        let cases = [
            TWO_HOT,
            "int leaf(int x) { return x + 1; }\n\
             int mid(int x) { return leaf(x) + leaf(x + 1); }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += mid(i); return s & 0xff; }",
            "int abs2(int x) { if (x < 0) return 0 - x; return x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 30; i++) s += abs2(15 - i); return s & 0xff; }",
            "int gsink;\n\
             int poke(int x) { gsink = gsink + x; return 0; }\n\
             int main() { int i; for (i = 0; i < 25; i++) poke(i); return gsink & 0x7f; }",
        ];
        for src in cases {
            let (module, p) = plan_for(src, &InlineConfig::default());
            assert!(!p.expansions.is_empty(), "no expansions for {src}");
            let mut m = module.clone();
            crate::expand::expand_plan(&mut m, &p);
            assert_eq!(
                p.predicted_final_size(&module),
                m.total_size(),
                "prediction diverged for {src}"
            );
        }
    }
}
