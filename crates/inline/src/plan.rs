//! Expansion-site selection (§3.4) and the cost function (§2.3.3).
//!
//! Arcs that violate the linear order or touch the special nodes are
//! marked `not_expandable`; the rest are considered from the most to the
//! least frequently executed, accepting each arc whose cost is finite —
//! i.e. it passes the stack-explosion check and fits the remaining code-
//! size budget. Function sizes are re-evaluated after every acceptance,
//! exactly as §3.4 requires ("the code size of each function body must be
//! re-evaluated as new function calls are considered for expansion").

use impact_il::{CallSiteId, FuncId, Module};

use crate::classify::{Classification, SiteClass};
use crate::linearize::positions_of;
use crate::InlineConfig;

/// Why a site was not selected for expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Not classified safe (external / pointer / unsafe).
    NotSafe(SiteClass),
    /// The callee does not precede the caller in the linear order.
    ViolatesLinearOrder,
    /// Accepting this arc would exceed the code-size budget.
    OverBudget,
}

/// One accepted arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedExpansion {
    /// The call site to expand.
    pub site: CallSiteId,
    /// Caller (the function absorbing the body).
    pub caller: FuncId,
    /// Callee (the function being duplicated).
    pub callee: FuncId,
    /// Arc weight, for reporting.
    pub weight: u64,
}

/// The outcome of expansion-site selection.
#[derive(Clone, Debug)]
pub struct InlinePlan {
    /// The linear sequence the physical expansion must follow.
    pub order: Vec<FuncId>,
    /// Accepted arcs, in the order they were accepted (descending
    /// weight).
    pub expansions: Vec<PlannedExpansion>,
    /// Rejected sites with reasons (every site not in `expansions`).
    pub rejected: Vec<(CallSiteId, RejectReason)>,
    /// Projected total size after expansion, in IL instructions.
    pub projected_size: u64,
    /// The size budget that applied.
    pub budget: u64,
}

/// Selects the arcs to expand.
///
/// `order` comes from [`crate::linearize`]; `classification` from
/// [`crate::classify`]. The budget is
/// `original_size * config.code_growth_limit`.
pub fn plan(
    module: &Module,
    classification: &Classification,
    order: &[FuncId],
    config: &InlineConfig,
) -> InlinePlan {
    let pos = positions_of(order, module.functions.len());
    let original_size = module.total_size();
    let budget = (original_size as f64 * config.code_growth_limit).floor() as u64;

    // Current size estimate per function, updated as arcs are accepted.
    let mut sizes: Vec<u64> = module.functions.iter().map(|f| f.size()).collect();
    let mut total: u64 = original_size;

    let mut expansions = Vec::new();
    let mut rejected = Vec::new();

    // Non-safe arcs are rejected outright.
    for s in &classification.sites {
        if s.class != SiteClass::Safe {
            rejected.push((s.site, RejectReason::NotSafe(s.class)));
        }
    }

    // Safe arcs, most frequently executed first.
    for s in classification.safe_sites_by_weight() {
        let callee = s.callee.expect("safe sites have direct callees");
        // The linear-order constraint: callee strictly before caller.
        if pos[callee.index()] >= pos[s.caller.index()] {
            rejected.push((s.site, RejectReason::ViolatesLinearOrder));
            continue;
        }
        // Code-expansion hazard: the caller absorbs a copy of the callee
        // (at its *current*, possibly already-grown size).
        let growth = sizes[callee.index()];
        if total + growth > budget {
            rejected.push((s.site, RejectReason::OverBudget));
            continue;
        }
        sizes[s.caller.index()] += growth;
        total += growth;
        expansions.push(PlannedExpansion {
            site: s.site,
            caller: s.caller,
            callee,
            weight: s.weight,
        });
    }

    InlinePlan {
        order: order.to_vec(),
        expansions,
        rejected,
        projected_size: total,
        budget,
    }
}

impl InlinePlan {
    /// Total dynamic calls the accepted arcs account for (the predicted
    /// upper bound of eliminated calls).
    pub fn planned_dynamic_calls(&self) -> u64 {
        self.expansions.iter().map(|e| e.weight).sum()
    }

    /// Flattens the plan into execution order: callers in linear order
    /// (every callee is complete before any caller absorbs it), and
    /// within a caller heaviest arc first, matching selection order.
    pub fn execution_order(&self) -> Vec<&PlannedExpansion> {
        let mut by_caller: std::collections::HashMap<FuncId, Vec<&PlannedExpansion>> =
            std::collections::HashMap::new();
        for e in &self.expansions {
            by_caller.entry(e.caller).or_default().push(e);
        }
        let mut out = Vec::with_capacity(self.expansions.len());
        for &func in &self.order {
            let Some(expansions) = by_caller.get(&func) else {
                continue;
            };
            let mut sorted = expansions.clone();
            sorted.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.site.cmp(&b.site)));
            out.extend(sorted);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::linearize::{linearize, Linearization};
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    fn plan_for(src: &str, config: &InlineConfig) -> (Module, InlinePlan) {
        let module = compile(&[Source::new("t.c", src)]).expect("compiles");
        let out = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
        let profile = out.profile.averaged();
        let graph = impact_callgraph::CallGraph::build(&module, &profile);
        let classification = classify(&module, &graph, config);
        let order = linearize(&module, &profile, Linearization::NodeWeight);
        let p = plan(&module, &classification, &order, config);
        (module, p)
    }

    const TWO_HOT: &str = "int a(int x) { return x + 1; }\n\
         int b(int x) { return x * 2; }\n\
         int main() {\n\
           int i; int s; s = 0;\n\
           for (i = 0; i < 60; i++) s += a(i);\n\
           for (i = 0; i < 40; i++) s += b(i);\n\
           return s & 0xff;\n\
         }";

    #[test]
    fn accepts_heaviest_arcs_first() {
        let (module, p) = plan_for(TWO_HOT, &InlineConfig::default());
        assert_eq!(p.expansions.len(), 2);
        assert!(p.expansions[0].weight >= p.expansions[1].weight);
        assert_eq!(module.function(p.expansions[0].callee).name, "a");
    }

    #[test]
    fn every_site_is_either_expanded_or_rejected() {
        let (module, p) = plan_for(TWO_HOT, &InlineConfig::default());
        let total = module.all_call_sites().len();
        assert_eq!(p.expansions.len() + p.rejected.len(), total);
    }

    #[test]
    fn projection_stays_within_budget() {
        for limit in [1.1f64, 1.5, 2.0] {
            let config = InlineConfig {
                code_growth_limit: limit,
                ..InlineConfig::default()
            };
            let (_, p) = plan_for(TWO_HOT, &config);
            assert!(
                p.projected_size <= p.budget,
                "limit {limit}: projected {} > budget {}",
                p.projected_size,
                p.budget
            );
        }
    }

    #[test]
    fn tight_budget_rejects_over_budget() {
        let config = InlineConfig {
            code_growth_limit: 1.0,
            ..InlineConfig::default()
        };
        let (_, p) = plan_for(TWO_HOT, &config);
        assert!(p.expansions.is_empty());
        assert!(p
            .rejected
            .iter()
            .any(|(_, r)| *r == RejectReason::OverBudget));
    }

    #[test]
    fn planned_dynamic_calls_sums_weights() {
        let (_, p) = plan_for(TWO_HOT, &InlineConfig::default());
        assert_eq!(p.planned_dynamic_calls(), 100);
    }
}
