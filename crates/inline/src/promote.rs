//! Profile-guided indirect-call promotion (extension).
//!
//! The paper stops at the worst-case `###` node: calls through pointers
//! "defeat inline expansion" (§4.2) and it suggests interprocedural
//! analysis to narrow their callee sets (§2.5). The profiler, however,
//! already *observes* the real target distribution of every indirect
//! site. When one function dominates a hot site, the call can be promoted
//! to a guarded direct call:
//!
//! ```text
//!     r = call *fp(args)          t = &dominant
//!                          ==>    if (fp == t)  r = call dominant(args)
//!                                 else          r = call *fp(args)
//! ```
//!
//! The direct leg then classifies *safe* and becomes inlinable, while the
//! indirect leg keeps full generality. This is the forerunner of what
//! modern PGO compilers call indirect-call promotion / speculative
//! devirtualization.

use impact_il::{Block, BlockId, CallSiteId, Callee, CmpOp, FuncId, Inst, Module, Terminator};
use impact_vm::{ProfTarget, Profile};

/// Record of one promoted site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromotedSite {
    /// The original indirect site (now the cold leg's site).
    pub site: CallSiteId,
    /// The fresh site of the hot direct leg.
    pub direct_site: CallSiteId,
    /// The function the site was promoted to.
    pub target: FuncId,
    /// Observed hits on the dominant target.
    pub target_weight: u64,
    /// Observed hits on all other targets.
    pub residual_weight: u64,
}

/// Promotes every hot, single-target-dominated indirect call site.
///
/// A site qualifies when the profile attributes at least `min_weight`
/// hits to one function and that function covers at least `min_fraction`
/// of the site's executions. `profile` is updated in place so the fresh
/// direct sites carry the dominant weight (and the residual stays on the
/// indirect leg) — downstream classification and planning then see the
/// promoted arcs as ordinary weighted arcs.
pub fn promote_indirect_calls(
    module: &mut Module,
    profile: &mut Profile,
    min_weight: u64,
    min_fraction: f64,
) -> Vec<PromotedSite> {
    let candidates = promote_candidates(module, profile, min_weight, min_fraction);
    let mut promoted = Vec::new();
    for (caller, site, target, hits, residual) in candidates {
        if let Some(p) = promote_one(module, caller, site, target, hits, residual) {
            // Seed the profile: the fresh direct site inherits the
            // dominant hits; the original (indirect) site keeps the rest.
            let limit = module.call_site_limit() as usize;
            if profile.site_counts.len() < limit {
                profile.site_counts.resize(limit, 0);
            }
            profile.site_counts[p.direct_site.0 as usize] = hits;
            profile.site_counts[p.site.0 as usize] = residual;
            promoted.push(p);
        }
    }
    promoted
}

/// Collects qualifying sites (caller, site, dominant target, target hits,
/// residual hits) without mutating anything.
pub(crate) fn promote_candidates(
    module: &Module,
    profile: &Profile,
    min_weight: u64,
    min_fraction: f64,
) -> Vec<(FuncId, CallSiteId, FuncId, u64, u64)> {
    let mut candidates: Vec<(FuncId, CallSiteId, FuncId, u64, u64)> = Vec::new();
    for (caller, site, callee) in module.all_call_sites() {
        if !matches!(callee, Callee::Reg(_)) {
            continue;
        }
        let Some(targets) = profile.site_targets.get(&site) else {
            continue;
        };
        let total: u64 = targets.values().sum();
        let Some((&ProfTarget::Func(dominant), &hits)) = targets
            .iter()
            .filter(|(t, _)| matches!(t, ProfTarget::Func(_)))
            .max_by_key(|(_, &n)| n)
        else {
            continue;
        };
        if hits < min_weight || (hits as f64) < min_fraction * total as f64 {
            continue;
        }
        candidates.push((caller, site, dominant, hits, total - hits));
    }
    candidates
}

pub(crate) fn promote_one(
    module: &mut Module,
    caller: FuncId,
    site: CallSiteId,
    target: FuncId,
    target_weight: u64,
    residual_weight: u64,
) -> Option<PromotedSite> {
    // The guarded direct call must match the target's arity.
    let expected_params = module.function(target).num_params as usize;
    let direct_site = module.fresh_call_site();

    let func = module.function_mut(caller);
    let (block, idx) = func
        .call_sites()
        .find(|(_, _, s, _)| *s == site)
        .map(|(b, i, _, _)| (b, i))?;
    let Inst::Call {
        callee: Callee::Reg(fp),
        args,
        dst,
        ..
    } = func.block(block).insts[idx].clone()
    else {
        return None;
    };
    if args.len() != expected_params {
        return None;
    }

    // Split: head | [guard] -> direct/indirect -> join(tail).
    let join = BlockId::from_index(func.blocks.len());
    let direct_b = BlockId::from_index(func.blocks.len() + 1);
    let indirect_b = BlockId::from_index(func.blocks.len() + 2);

    let tail: Vec<Inst> = func.block_mut(block).insts.split_off(idx + 1);
    func.block_mut(block).insts.pop();
    let orig_term = std::mem::replace(&mut func.block_mut(block).term, Terminator::Jump(join));

    let t_reg = func.new_reg();
    let c_reg = func.new_reg();
    func.block_mut(block).insts.push(Inst::AddrOfFunc {
        dst: t_reg,
        func: target,
    });
    func.block_mut(block).insts.push(Inst::Cmp {
        op: CmpOp::Eq,
        dst: c_reg,
        lhs: fp,
        rhs: t_reg,
    });
    func.block_mut(block).term = Terminator::Branch {
        cond: c_reg,
        then_to: direct_b,
        else_to: indirect_b,
    };

    // join
    func.blocks.push(Block {
        insts: tail,
        term: orig_term,
    });
    // direct leg
    func.blocks.push(Block {
        insts: vec![Inst::Call {
            site: direct_site,
            callee: Callee::Func(target),
            args: args.clone(),
            dst,
        }],
        term: Terminator::Jump(join),
    });
    // indirect leg (keeps the original site id)
    func.blocks.push(Block {
        insts: vec![Inst::Call {
            site,
            callee: Callee::Reg(fp),
            args,
            dst,
        }],
        term: Terminator::Jump(join),
    });

    Some(PromotedSite {
        site,
        direct_site,
        target,
        target_weight,
        residual_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{inline_module, InlineConfig};
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    const DISPATCH: &str = "int hot(int x) { return x * 2; }\n\
         int cold(int x) { return x + 100; }\n\
         int (*pick[8])(int) = {hot, hot, hot, hot, hot, hot, hot, cold};\n\
         int main() {\n\
           int i; int s; s = 0;\n\
           for (i = 0; i < 160; i++) s += pick[i & 7](i);\n\
           return s & 0xff;\n\
         }";

    fn compiled(src: &str) -> (Module, Profile, i64) {
        let module = compile(&[Source::new("t.c", src)]).expect("compiles");
        let out = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
        (module.clone(), out.profile, out.exit_code)
    }

    #[test]
    fn promotes_dominated_site_and_preserves_semantics() {
        let (mut module, mut profile, baseline) = compiled(DISPATCH);
        let promoted = promote_indirect_calls(&mut module, &mut profile, 10, 0.5);
        assert_eq!(promoted.len(), 1);
        let p = &promoted[0];
        assert_eq!(module.function(p.target).name, "hot");
        assert_eq!(p.target_weight, 140);
        assert_eq!(p.residual_weight, 20);
        impact_il::verify_module(&module).expect("verifies");
        let after = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(after.exit_code, baseline);
        // The profile was reseeded.
        assert_eq!(profile.site_weight(p.direct_site), 140);
        assert_eq!(profile.site_weight(p.site), 20);
    }

    #[test]
    fn promotion_enables_inlining_of_the_hot_target() {
        let (mut module, mut profile, baseline) = compiled(DISPATCH);
        let before_calls = {
            let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
            out.profile.calls
        };
        let promoted = promote_indirect_calls(&mut module, &mut profile, 10, 0.5);
        assert_eq!(promoted.len(), 1);
        let report = inline_module(&mut module, &profile.averaged(), &InlineConfig::default());
        assert!(
            report
                .expanded
                .iter()
                .any(|e| module.functions.get(e.callee.index()).is_some()),
            "the promoted direct arc should expand: {:?}",
            report.expanded
        );
        let after = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(after.exit_code, baseline);
        // 140 of the 160 dispatch calls are gone (plus/minus the cold leg).
        assert!(
            after.profile.calls <= before_calls - 130,
            "calls {} -> {}",
            before_calls,
            after.profile.calls
        );
    }

    #[test]
    fn respects_min_weight_and_fraction() {
        let (mut module, mut profile, _) = compiled(DISPATCH);
        // Too high a weight bar: nothing promoted.
        assert!(promote_indirect_calls(&mut module, &mut profile, 1000, 0.5).is_empty());
        // Too high a fraction bar (hot covers 87.5%): nothing promoted.
        let (mut module2, mut profile2, _) = compiled(DISPATCH);
        assert!(promote_indirect_calls(&mut module2, &mut profile2, 10, 0.95).is_empty());
    }

    #[test]
    fn balanced_sites_are_left_alone_under_majority_rule() {
        let src = "int a(int x) { return x + 1; }\n\
             int b(int x) { return x + 2; }\n\
             int (*pick[2])(int) = {a, b};\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 100; i++) s += pick[i & 1](i); return s & 0xff; }";
        let (mut module, mut profile, _) = compiled(src);
        // 50/50 split: fails a 0.6 fraction requirement.
        assert!(promote_indirect_calls(&mut module, &mut profile, 10, 0.6).is_empty());
        // But a plain majority rule (0.5) promotes one leg.
        let promoted = promote_indirect_calls(&mut module, &mut profile, 10, 0.5);
        assert_eq!(promoted.len(), 1);
        impact_il::verify_module(&module).unwrap();
    }

    #[test]
    fn never_fires_without_observed_targets() {
        let src = "int f(int x) { return x; }\n\
             int main() { int (*g)(int); g = f; if (0) return g(1); return f(2) + 40; }";
        let (mut module, mut profile, _) = compiled(src);
        assert!(promote_indirect_calls(&mut module, &mut profile, 1, 0.5).is_empty());
    }
}
