//! Transactional expansion with rollback (robustness layer).
//!
//! The paper's expander assumes every planned arc expands cleanly. A
//! production inliner cannot: a bad interaction between renaming and an
//! unusual body shape must not take the whole compilation down, and it
//! must *never* ship a caller it cannot re-verify. This module wraps each
//! physical expansion in a transaction:
//!
//! 1. snapshot the caller's [`Function`] (the only state `expand_site`
//!    mutates besides the monotone call-site counter);
//! 2. perform the expansion;
//! 3. re-verify the caller with [`impact_il::verify_function`];
//! 4. on failure, restore the snapshot, record a structured
//!    [`Incident`], and continue with the rest of the plan.
//!
//! Fresh call-site ids allocated by a rolled-back expansion are simply
//! never referenced again — the id space is monotone, so orphaned ids are
//! harmless to verification and profiling alike.
//!
//! Failure is injected deterministically through [`FaultPlan`] keys:
//! `expand:verify` forces step 3 to fail on its Nth evaluation, and
//! `promote:verify` does the same for indirect-call promotion.

use std::fmt;

use impact_il::{verify_function, Module};
use impact_vm::{FaultPlan, Profile};

use crate::expand::{DefCache, DefCacheStats, ExpansionRecord};
use crate::plan::InlinePlan;
use crate::promote::{promote_candidates, promote_one, PromotedSite};

/// Which stage of the pipeline an [`Incident`] occurred in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentStage {
    /// Physical inline expansion of one arc.
    Expand,
    /// Indirect-call promotion of one site.
    Promote,
    /// An optimization pass on one function.
    OptPass,
    /// The optimizer's fixpoint loop hit its round cap while passes were
    /// still reporting changes (pass oscillation).
    OptFixpoint,
    /// Profile acquisition (corrupt file or trapping profiling run).
    Profile,
    /// The differential safety net observed a behavior divergence.
    Divergence,
}

impl fmt::Display for IncidentStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IncidentStage::Expand => "expand",
            IncidentStage::Promote => "promote",
            IncidentStage::OptPass => "opt",
            IncidentStage::OptFixpoint => "opt:fixpoint",
            IncidentStage::Profile => "profile",
            IncidentStage::Divergence => "differential",
        })
    }
}

/// A structured record of one recovered failure.
///
/// Incidents are the audit trail of the robustness layer: every rollback,
/// skipped pass, or degraded input produces one, and the driver surfaces
/// them in its report line (`; incidents: N (M rolled back)`).
#[derive(Clone, Debug)]
pub struct Incident {
    /// Pipeline stage the failure occurred in.
    pub stage: IncidentStage,
    /// What was being worked on (e.g. `` `sq` -> `main` (site 3) ``).
    pub subject: String,
    /// Why it failed.
    pub detail: String,
    /// Whether the transaction was rolled back (as opposed to merely
    /// skipped or degraded).
    pub rolled_back: bool,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.subject, self.detail)?;
        if self.rolled_back {
            f.write_str(" (rolled back)")?;
        }
        Ok(())
    }
}

/// Renders a verification failure into one incident detail line.
fn render_failure(errors: &[impact_il::VerifyError]) -> String {
    let mut out = String::from("post-expansion verification failed: ");
    for (i, e) in errors.iter().take(3).enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        out.push_str(&e.to_string());
    }
    if errors.len() > 3 {
        out.push_str(&format!("; ... ({} total)", errors.len()));
    }
    out
}

/// Transactional variant of [`crate::expand_plan_with_cache`].
///
/// Executes every planned expansion in linear order, each inside a
/// snapshot/verify/rollback transaction. An arc whose expansion leaves
/// the caller unverifiable (or whose `expand:verify` fault point fires)
/// is rolled back and recorded as an [`Incident`]; the remaining plan
/// still executes.
pub fn expand_plan_transactional(
    module: &mut Module,
    plan: &InlinePlan,
    cache_capacity: usize,
    fault: &FaultPlan,
) -> (Vec<ExpansionRecord>, DefCacheStats, Vec<Incident>) {
    let mut cache = DefCache::new(cache_capacity.min(1 << 20));
    let mut records = Vec::with_capacity(plan.expansions.len());
    let mut incidents = Vec::new();
    for e in plan.execution_order() {
        cache.touch(e.callee, false);
        cache.touch(e.caller, true);
        let snapshot = module.function(e.caller).clone();
        let record = crate::expand::expand_site(module, e.caller, e.site, e.callee);
        let verdict = if fault.should_fail("expand:verify") {
            Err("fault injection forced a verification failure".to_string())
        } else {
            verify_function(module, e.caller).map_err(|errs| render_failure(&errs))
        };
        match verdict {
            Ok(()) => records.push(record),
            Err(detail) => {
                *module.function_mut(e.caller) = snapshot;
                incidents.push(Incident {
                    stage: IncidentStage::Expand,
                    subject: format!(
                        "`{}` -> `{}` (site {})",
                        module.function(e.callee).name,
                        module.function(e.caller).name,
                        e.site.0
                    ),
                    detail,
                    rolled_back: true,
                });
            }
        }
    }
    (records, cache.finish(), incidents)
}

/// Transactional variant of [`crate::promote_indirect_calls`].
///
/// Each qualifying site is promoted inside its own transaction: the
/// caller is snapshotted, the guarded direct call is built, and the
/// caller is re-verified (the `promote:verify` fault point forces a
/// failure). A failed promotion rolls back the caller, leaves the
/// profile untouched, and is recorded as an [`Incident`].
pub fn promote_indirect_calls_transactional(
    module: &mut Module,
    profile: &mut Profile,
    min_weight: u64,
    min_fraction: f64,
    fault: &FaultPlan,
) -> (Vec<PromotedSite>, Vec<Incident>) {
    let candidates = promote_candidates(module, profile, min_weight, min_fraction);
    let mut promoted = Vec::new();
    let mut incidents = Vec::new();
    for (caller, site, target, hits, residual) in candidates {
        let snapshot = module.function(caller).clone();
        let Some(p) = promote_one(module, caller, site, target, hits, residual) else {
            continue;
        };
        let verdict = if fault.should_fail("promote:verify") {
            Err("fault injection forced a verification failure".to_string())
        } else {
            verify_function(module, caller).map_err(|errs| render_failure(&errs))
        };
        match verdict {
            Ok(()) => {
                // Seed the profile only for promotions that stick.
                let limit = module.call_site_limit() as usize;
                if profile.site_counts.len() < limit {
                    profile.site_counts.resize(limit, 0);
                }
                profile.site_counts[p.direct_site.0 as usize] = hits;
                profile.site_counts[p.site.0 as usize] = residual;
                promoted.push(p);
            }
            Err(detail) => {
                *module.function_mut(caller) = snapshot;
                incidents.push(Incident {
                    stage: IncidentStage::Promote,
                    subject: format!(
                        "site {} -> `{}` in `{}`",
                        site.0,
                        module.function(target).name,
                        module.function(caller).name
                    ),
                    detail,
                    rolled_back: true,
                });
            }
        }
    }
    (promoted, incidents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{inline_module, InlineConfig};
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    const TWO_ARCS: &str = "int sq(int x) { return x * x; }\n\
         int cube(int x) { return x * x * x; }\n\
         int main() { int i; int s; s = 0;\n\
           for (i = 0; i < 100; i++) { s += sq(i); s += cube(i); }\n\
           return s & 0xff; }";

    fn faulted_config(spec: &str) -> InlineConfig {
        let fault = FaultPlan::new();
        fault.arm_spec(spec).expect("valid fault spec");
        InlineConfig {
            fault,
            ..InlineConfig::default()
        }
    }

    #[test]
    fn forced_verify_failure_rolls_back_one_arc_and_keeps_the_rest() {
        let module = compile(&[Source::new("t.c", TWO_ARCS)]).unwrap();
        let base = run(&module, vec![], vec![], &VmConfig::default()).unwrap();

        let mut inlined = module.clone();
        let report = inline_module(
            &mut inlined,
            &base.profile,
            &faulted_config("expand:verify:1"),
        );
        assert_eq!(report.incidents.len(), 1);
        let inc = &report.incidents[0];
        assert_eq!(inc.stage, IncidentStage::Expand);
        assert!(inc.rolled_back);
        // One of the two planned arcs survived the fault.
        assert_eq!(report.expanded.len(), 2, "both arcs were planned");
        assert_eq!(report.records.len(), 1, "one arc was rolled back");

        impact_il::verify_module(&inlined).expect("module still verifies");
        let after = run(&inlined, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(after.exit_code, base.exit_code);
        assert_eq!(after.stdout, base.stdout);
    }

    #[test]
    fn rollback_restores_the_exact_caller_body() {
        let module = compile(&[Source::new("t.c", TWO_ARCS)]).unwrap();
        let base = run(&module, vec![], vec![], &VmConfig::default()).unwrap();

        let mut inlined = module.clone();
        let mut config = faulted_config("expand:verify:1");
        config.eliminate_unreachable = false;
        let report = inline_module(&mut inlined, &base.profile, &config);
        // First arc rolled back; second arc expanded normally.
        assert_eq!(report.incidents.len(), 1);
        let main_id = inlined.main_id().unwrap();
        let sq = inlined.func_by_name("sq").unwrap();
        let cube = inlined.func_by_name("cube").unwrap();
        // The rolled-back callee is still called; the expanded one is not.
        let still_called: Vec<_> = inlined
            .function(main_id)
            .call_sites()
            .filter_map(|(_, _, _, c)| match c {
                impact_il::Callee::Func(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(still_called.len(), 1);
        assert!(still_called[0] == sq || still_called[0] == cube);
    }

    #[test]
    fn promote_fault_rolls_back_and_leaves_profile_untouched() {
        let src = "int hot(int x) { return x * 2; }\n\
             int cold(int x) { return x + 100; }\n\
             int (*pick[8])(int) = {hot, hot, hot, hot, hot, hot, hot, cold};\n\
             int main() { int i; int s; s = 0;\n\
               for (i = 0; i < 160; i++) s += pick[i & 7](i);\n\
               return s & 0xff; }";
        let mut module = compile(&[Source::new("t.c", src)]).unwrap();
        let base = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let mut profile = base.profile.clone();
        let before_counts = profile.site_counts.clone();

        let fault = FaultPlan::new();
        fault.arm("promote:verify", 1);
        let (promoted, incidents) =
            promote_indirect_calls_transactional(&mut module, &mut profile, 10, 0.5, &fault);
        assert!(promoted.is_empty());
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].stage, IncidentStage::Promote);
        assert!(incidents[0].rolled_back);
        assert_eq!(profile.site_counts, before_counts);
        impact_il::verify_module(&module).expect("module unchanged and valid");
        let after = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(after.exit_code, base.exit_code);
    }

    #[test]
    fn incident_display_is_informative() {
        let inc = Incident {
            stage: IncidentStage::Expand,
            subject: "`sq` -> `main` (site 3)".into(),
            detail: "fault injection forced a verification failure".into(),
            rolled_back: true,
        };
        let s = inc.to_string();
        assert!(s.contains("[expand]"));
        assert!(s.contains("`sq` -> `main`"));
        assert!(s.ends_with("(rolled back)"));
    }

    #[test]
    fn without_faults_transactional_matches_plain_expansion() {
        let module = compile(&[Source::new("t.c", TWO_ARCS)]).unwrap();
        let base = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let mut a = module.clone();
        let mut b = module.clone();
        let ra = inline_module(&mut a, &base.profile, &InlineConfig::default());
        let rb = inline_module(&mut b, &base.profile, &InlineConfig::default());
        assert!(ra.incidents.is_empty());
        assert_eq!(ra.records.len(), rb.records.len());
        assert_eq!(
            impact_il::module_to_string(&a),
            impact_il::module_to_string(&b)
        );
    }
}
