//! # impact-obs — pipeline telemetry core
//!
//! A deliberately small span/counter recorder threaded through every stage
//! of the compilation pipeline (front end, verifier, call graph, inline
//! sub-phases, optimization passes, VM execution). Two properties shape
//! the design:
//!
//! * **Zero cost when disabled.** A disabled [`Telemetry`] handle is a
//!   `None` — [`Telemetry::span`] and [`Telemetry::count`] neither
//!   allocate nor read the clock, so instrumented code paths behave
//!   identically whether or not anyone is listening. This is the
//!   "minimum coverage instrumentation" discipline: observation must not
//!   perturb the thing observed.
//! * **No wall-clock in durable payloads.** Timings live only in
//!   clearly-marked `*_us` fields of the exported JSON, so consumers
//!   (tests, the campaign journal's byte-identical resume contract) can
//!   strip or avoid them. Counters — instruction counts, cache hits,
//!   site classes — are fully deterministic.
//!
//! Exporters: [`chrome_trace_json`] renders spans as Chrome trace-event
//! JSON (load it at `chrome://tracing` or <https://ui.perfetto.dev> for a
//! flamegraph); [`metrics_json`] renders aggregated per-stage counters
//! and timings as schema-versioned JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical counter names for the compilation service (pool, cache,
/// serve). Centralizing them here keeps the producer (driver) and the
/// consumers (metrics JSON assertions in tests and CI `jq` probes) from
/// drifting apart on spelling.
pub mod names {
    /// Tasks executed by a worker other than the one they were seeded to.
    pub const POOL_STEALS: &str = "pool:steals";
    /// Worker threads the pool actually ran with.
    pub const POOL_WORKERS: &str = "pool:workers";
    /// Cache probes that returned a validated entry.
    pub const CACHE_HITS: &str = "cache:hits";
    /// Cache probes that found no entry (includes quarantined probes,
    /// which degrade to a miss).
    pub const CACHE_MISSES: &str = "cache:misses";
    /// Entries published through the atomic staging path.
    pub const CACHE_STORES: &str = "cache:stores";
    /// Entries that failed validation and were renamed aside.
    pub const CACHE_QUARANTINED: &str = "cache:quarantined";
    /// Requests accepted off the socket (including ones later shed).
    pub const SERVE_REQUESTS: &str = "serve:requests";
    /// Requests that compiled and responded `ok`.
    pub const SERVE_OK: &str = "serve:ok";
    /// Requests that responded `error` (bad protocol, failed compile,
    /// worker panic).
    pub const SERVE_ERRORS: &str = "serve:errors";
    /// Requests shed with an immediate `busy` response (queue full).
    pub const SERVE_SHED: &str = "serve:shed";
    /// `ping` health checks answered by the daemon.
    pub const SERVE_PINGS: &str = "serve:pings";
    /// Entries (live or quarantined) deleted by budget eviction.
    pub const CACHE_EVICTIONS: &str = "cache:evictions";
    /// On-disk bytes reclaimed by budget eviction.
    pub const CACHE_EVICTED_BYTES: &str = "cache:evicted-bytes";
    /// Eviction passes that ran out of unpinned victims while still over
    /// budget (an in-flight read kept its entry alive).
    pub const CACHE_PIN_SKIPS: &str = "cache:pin-skips";
    /// Deterministic service faults that actually fired (each also bumps
    /// a dynamic `chaos:<fault-key>` counter naming the exact point).
    pub const CHAOS_INJECTED: &str = "chaos:injected";
    /// Retried requests answered verbatim from the daemon's idempotency
    /// table instead of recompiling.
    pub const SERVE_IDEMPOTENT_REPLAYS: &str = "serve:idempotent-replays";
    /// Connections shed at accept time by the `--max-conns` cap.
    pub const SERVE_CONN_CAPPED: &str = "serve:conn-capped";
    /// Client circuit breakers that tripped open (threshold consecutive
    /// retryable failures on one endpoint).
    pub const BREAKER_OPENED: &str = "breaker:opened";
    /// Half-open probes sent to cooled-down endpoints.
    pub const BREAKER_PROBES: &str = "breaker:probes";
    /// Breakers that closed again after a successful probe or request.
    pub const BREAKER_RECOVERED: &str = "breaker:recovered";
    /// Retryable endpoint failures that moved the client to another
    /// endpoint in the fleet.
    pub const NET_FAILOVERS: &str = "net:failovers";
    /// `stats` protocol requests answered from the daemon's live
    /// registry snapshot.
    pub const STATS_REQUESTS: &str = "stats:requests";
    /// Flight-recorder events discarded because the bounded ring was
    /// full (each discard evicts the oldest event).
    pub const FLIGHT_DROPPED: &str = "flight:dropped";
    /// Histogram: how long a connection sat in the serve queue before a
    /// worker picked it up.
    pub const HIST_QUEUE_WAIT: &str = "hist:queue-wait-us";
    /// Histogram: worker pickup to response written (daemon-side service
    /// time).
    pub const HIST_SERVICE: &str = "hist:service-us";
    /// Histogram: client-observed wire round-trip per exchange.
    pub const HIST_RTT: &str = "hist:rtt-us";
    /// Histogram: supervised compile-attempt wall time per request.
    pub const HIST_COMPILE: &str = "hist:compile-us";

    /// Every service counter name, for exhaustiveness checks.
    pub const ALL: &[&str] = &[
        POOL_STEALS,
        POOL_WORKERS,
        CACHE_HITS,
        CACHE_MISSES,
        CACHE_STORES,
        CACHE_QUARANTINED,
        CACHE_EVICTIONS,
        CACHE_EVICTED_BYTES,
        CACHE_PIN_SKIPS,
        SERVE_REQUESTS,
        SERVE_OK,
        SERVE_ERRORS,
        SERVE_SHED,
        SERVE_PINGS,
        SERVE_IDEMPOTENT_REPLAYS,
        SERVE_CONN_CAPPED,
        BREAKER_OPENED,
        BREAKER_PROBES,
        BREAKER_RECOVERED,
        NET_FAILOVERS,
        CHAOS_INJECTED,
        STATS_REQUESTS,
        FLIGHT_DROPPED,
        HIST_QUEUE_WAIT,
        HIST_SERVICE,
        HIST_RTT,
        HIST_COMPILE,
    ];
}

/// One completed span: a named region of pipeline work with its offset
/// from the telemetry epoch and its duration, both in microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name, e.g. `inline:plan` or `opt:constant-fold`.
    pub name: String,
    /// Start offset from the handle's creation, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Trace id tying this span to one logical request across the wire;
    /// `0` means untraced (local pipeline work).
    pub trace: u64,
}

/// Aggregated statistics for one span name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Stage name.
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total time across all entries, in microseconds.
    pub total_us: u64,
}

/// Number of fixed log2-spaced buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed log-spaced-bucket latency histogram. Bucket boundaries are
/// deterministic powers of two — bucket `0` holds the value `0`, bucket
/// `i` (for `0 < i < 31`) holds values in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything at or above `2^30` — so two runs that record
/// the same values always produce the same bucket counts, and merging is
/// plain element-wise addition. Percentiles are derived from the counts
/// and report the matching bucket's inclusive upper bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The bucket a value lands in: its bit length, clamped to the last
    /// bucket (values beyond `2^30` never index out of range).
    pub fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`; the last bucket is
    /// unbounded (`u64::MAX`, rendered as `+Inf` in Prometheus form).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The `p`-th percentile (`0..=100`) as the upper bound of the first
    /// bucket whose cumulative count reaches the rank. Zero samples
    /// report `0` — never a NaN, since everything here is integral.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count.saturating_mul(p)).div_ceil(100).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Folds another histogram in: bucket counts, count, and sum are
    /// summed element-wise, so merging is associative and commutative
    /// (serial and parallel worker merges agree).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

struct Inner {
    base: Instant,
    /// When false (a `counters_only` handle), raw span events are folded
    /// away on drop instead of accumulated — a long-lived daemon keeps
    /// bounded memory while its counters and histograms stay live.
    keep_spans: bool,
    state: Mutex<Collector>,
}

/// A cheaply-clonable telemetry handle. Disabled by default; every clone
/// shares the same recording. The `trace` id rides on the handle (not
/// the shared collector), so `with_trace` clones tag their spans without
/// affecting sibling clones.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    trace: u64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle: never allocates, never reads the clock.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            trace: 0,
        }
    }

    /// An enabled handle recording into a fresh collector.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                base: Instant::now(),
                keep_spans: true,
                state: Mutex::new(Collector::default()),
            })),
            trace: 0,
        }
    }

    /// An enabled handle that keeps counters and histograms but folds raw
    /// span events away on drop. A long-lived daemon uses this so the
    /// `stats` protocol op always has a live registry to answer from
    /// without the span vector growing for the daemon's whole lifetime.
    pub fn counters_only() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                base: Instant::now(),
                keep_spans: false,
                state: Mutex::new(Collector::default()),
            })),
            trace: 0,
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A clone of this handle whose spans are tagged with `trace`. The
    /// collector is shared; only the tag differs.
    pub fn with_trace(&self, trace: u64) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            trace,
        }
    }

    /// The trace id this handle tags spans with (`0` = untraced).
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Microseconds elapsed since the handle's epoch (`0` when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.base.elapsed().as_micros() as u64,
        }
    }

    /// Opens a span; the region is recorded when the returned guard drops.
    /// On a disabled handle this is a no-op returning an inert guard.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { rec: None },
            Some(inner) => Span {
                rec: Some(SpanRec {
                    inner: Arc::clone(inner),
                    name: name.to_string(),
                    trace: self.trace,
                    started: Instant::now(),
                }),
            },
        }
    }

    /// Records a pre-measured span at an explicit offset, tagged with
    /// this handle's trace id. This is how the serve daemon rebases a
    /// request's spans onto its own timeline and the client stitches
    /// daemon spans under its round-trip span.
    pub fn add_span(&self, name: &str, start_us: u64, dur_us: u64) {
        if let Some(inner) = &self.inner {
            if !inner.keep_spans {
                return;
            }
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.spans.push(SpanEvent {
                name: name.to_string(),
                start_us,
                dur_us,
                trace: self.trace,
            });
        }
    }

    /// Adds `n` to the named counter. No-op on a disabled handle.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            *st.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Records one value into the named histogram. No-op on a disabled
    /// handle.
    pub fn record_value(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.hists.entry(name.to_string()).or_default().record(v);
        }
    }

    /// Folds a finished snapshot into this handle: counters and
    /// histograms are summed, spans (when this handle keeps them) are
    /// appended shifted by `offset_us` onto this handle's timeline with
    /// their trace tags preserved. The serve daemon absorbs each
    /// request's private collector this way.
    pub fn absorb(&self, m: &Metrics, offset_us: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            if inner.keep_spans {
                st.spans.extend(m.spans.iter().map(|s| SpanEvent {
                    name: s.name.clone(),
                    start_us: s.start_us.saturating_add(offset_us),
                    dur_us: s.dur_us,
                    trace: s.trace,
                }));
            }
            for (k, v) in &m.counters {
                *st.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, h) in &m.hists {
                st.hists.entry(k.clone()).or_default().merge(h);
            }
        }
    }

    /// Takes a snapshot of everything recorded so far. A disabled handle
    /// snapshots as empty.
    pub fn snapshot(&self) -> Metrics {
        match &self.inner {
            None => Metrics::default(),
            Some(inner) => {
                let st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
                Metrics {
                    spans: st.spans.clone(),
                    counters: st.counters.clone(),
                    hists: st.hists.clone(),
                }
            }
        }
    }
}

struct SpanRec {
    inner: Arc<Inner>,
    name: String,
    trace: u64,
    started: Instant,
}

/// RAII guard for an open span; records on drop.
pub struct Span {
    rec: Option<SpanRec>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            if !rec.inner.keep_spans {
                return;
            }
            let dur_us = rec.started.elapsed().as_micros() as u64;
            let start_us = rec
                .started
                .saturating_duration_since(rec.inner.base)
                .as_micros() as u64;
            let mut st = rec.inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.spans.push(SpanEvent {
                name: rec.name,
                start_us,
                dur_us,
                trace: rec.trace,
            });
        }
    }
}

/// A snapshot of recorded telemetry: raw span events, counters, and
/// latency histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Every recorded span, in completion order.
    pub spans: Vec<SpanEvent>,
    /// Counter values, keyed by name (sorted).
    pub counters: BTreeMap<String, u64>,
    /// Latency histograms, keyed by name (sorted).
    pub hists: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Folds another snapshot into this one: spans are appended, counters
    /// summed, histogram buckets summed element-wise (associatively, so
    /// serial and parallel worker merges agree). Used by `batch`/`fuzz`
    /// to aggregate per-unit metrics into a campaign-level summary.
    pub fn merge(&mut self, other: &Metrics) {
        self.spans.extend(other.spans.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Aggregates spans by name (count + total duration), sorted by name.
    pub fn span_stats(&self) -> Vec<SpanStat> {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(&s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_us;
        }
        by_name
            .into_iter()
            .map(|(name, (count, total_us))| SpanStat {
                name: name.to_string(),
                count,
                total_us,
            })
            .collect()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as Chrome trace-event JSON (the `traceEvents`
/// array format): one complete (`"ph":"X"`) event per span, microsecond
/// timestamps. Loads in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(m: &Metrics) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in m.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let args = if s.trace == 0 {
            String::new()
        } else {
            format!(",\"args\":{{\"trace\":\"{:016x}\"}}", s.trace)
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"impact\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{}{}}}",
            esc(&s.name),
            s.start_us,
            s.dur_us,
            args
        ));
    }
    out.push_str("]}\n");
    out
}

/// Schema version of [`metrics_json`] output.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Renders a snapshot as schema-versioned metrics JSON. Wall-clock data
/// is confined to fields named `*_us`; everything else is deterministic
/// for a given input, so tests can compare two runs after stripping the
/// `*_us` fields.
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"version\": {METRICS_SCHEMA_VERSION},\n  \"kind\": \"impact-metrics\",\n  \"spans\": ["
    ));
    let stats = m.span_stats();
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}}}",
            esc(&s.name),
            s.count,
            s.total_us
        ));
    }
    if !stats.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counters\": [");
    for (i, (k, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"value\": {}}}",
            esc(k),
            v
        ));
    }
    if !m.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"hists\": [");
    for (i, (k, h)) in m.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets = h
            .buckets()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"buckets_us\": [{}]}}",
            esc(k),
            h.count(),
            h.sum(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99),
            buckets
        ));
    }
    if !m.hists.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Default bounded capacity of a daemon [`FlightRecorder`] ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One structured flight-recorder event: what happened, when (relative to
/// the recorder's epoch), and on behalf of which traced request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number across the recorder's whole lifetime,
    /// so a dump shows how many events preceded the retained window.
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Event kind, e.g. `accept`, `shed`, `fault`, `panic`, `quarantine`.
    pub kind: String,
    /// Free-form detail (fault key, error text, request verb).
    pub detail: String,
    /// Trace id of the request involved; `0` when none applies.
    pub trace: u64,
}

struct FlightState {
    ring: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring of recent structured events — the daemon's crash flight
/// recorder. Recording is cheap (one mutex, no allocation beyond the
/// event strings) and never blocks the request path on I/O; when a crash
/// or violation happens, [`FlightRecorder::snapshot`] yields the last
/// moments for the incident dump.
pub struct FlightRecorder {
    capacity: usize,
    base: Instant,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            base: Instant::now(),
            state: Mutex::new(FlightState {
                ring: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, evicting the oldest when the ring is full.
    /// Returns `true` when an event was evicted (the caller can bump the
    /// `flight:dropped` counter).
    pub fn record(&self, kind: &str, detail: &str, trace: u64) -> bool {
        let at_us = self.base.elapsed().as_micros() as u64;
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let seq = st.next_seq;
        st.next_seq += 1;
        let mut evicted = false;
        if st.ring.len() == self.capacity {
            st.ring.pop_front();
            st.dropped += 1;
            evicted = true;
        }
        st.ring.push_back(FlightEvent {
            seq,
            at_us,
            kind: kind.to_string(),
            detail: detail.to_string(),
            trace,
        });
        evicted
    }

    /// The retained events in arrival order, plus how many older events
    /// the bounded ring has discarded.
    pub fn snapshot(&self) -> (Vec<FlightEvent>, u64) {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        (st.ring.iter().cloned().collect(), st.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_counter_names_are_unique_and_namespaced() {
        let mut seen = std::collections::BTreeSet::new();
        for n in names::ALL {
            assert!(seen.insert(n), "duplicate counter name {n}");
            assert!(
                n.starts_with("pool:")
                    || n.starts_with("cache:")
                    || n.starts_with("serve:")
                    || n.starts_with("chaos:")
                    || n.starts_with("breaker:")
                    || n.starts_with("net:")
                    || n.starts_with("stats:")
                    || n.starts_with("flight:")
                    || n.starts_with("hist:"),
                "unnamespaced counter {n}"
            );
        }
    }

    /// Scans this crate's own source for `pub const` counter names inside
    /// `mod names` and asserts each one is registered in `names::ALL`, so
    /// a counter added later can't silently drift out of the registry.
    #[test]
    fn every_declared_counter_name_is_registered_in_all() {
        let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/src/lib.rs"))
            .expect("crate source is readable");
        let mut declared = Vec::new();
        for line in src.lines() {
            let Some(rest) = line.trim_start().strip_prefix("pub const ") else {
                continue;
            };
            // Only counter-name string constants: `NAME: &str = "..."`.
            let Some((_, value)) = rest.split_once(": &str = \"") else {
                continue;
            };
            let Some((name, _)) = value.split_once('"') else {
                continue;
            };
            declared.push(name.to_string());
        }
        assert!(
            declared.len() >= names::ALL.len(),
            "source scan found {} names, registry has {}",
            declared.len(),
            names::ALL.len()
        );
        for name in &declared {
            assert!(
                names::ALL.contains(&name.as_str()),
                "counter `{name}` is declared but missing from names::ALL"
            );
        }
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        {
            let _s = t.span("stage");
            t.count("things", 5);
        }
        let m = t.snapshot();
        assert!(m.spans.is_empty());
        assert!(m.counters.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_and_counters_record_and_aggregate() {
        let t = Telemetry::enabled();
        {
            let _a = t.span("phase");
        }
        {
            let _b = t.span("phase");
        }
        t.count("items", 3);
        t.count("items", 4);
        let m = t.snapshot();
        assert_eq!(m.spans.len(), 2);
        assert_eq!(m.counters.get("items"), Some(&7));
        let stats = m.span_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "phase");
        assert_eq!(stats[0].count, 2);
    }

    #[test]
    fn clones_share_one_collector() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.count("shared", 1);
        assert_eq!(t.snapshot().counters.get("shared"), Some(&1));
    }

    #[test]
    fn merge_appends_spans_and_sums_counters() {
        let mut a = Metrics::default();
        a.counters.insert("x".into(), 2);
        a.spans.push(SpanEvent {
            name: "s".into(),
            start_us: 0,
            dur_us: 10,
            trace: 0,
        });
        let mut b = Metrics::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        a.merge(&b);
        assert_eq!(a.counters.get("x"), Some(&5));
        assert_eq!(a.counters.get("y"), Some(&1));
        assert_eq!(a.spans.len(), 1);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("a\"b");
        }
        let json = chrome_trace_json(&t.snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn metrics_json_shape_and_determinism_without_us_fields() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("stage");
        }
        t.count("n", 9);
        let json = metrics_json(&t.snapshot());
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"kind\": \"impact-metrics\""));
        assert!(json.contains("\"name\": \"stage\""));
        assert!(json.contains("\"name\": \"n\", \"value\": 9"));
        // Stripping the timing fields yields a deterministic document.
        let strip = |s: &str| -> String {
            s.lines()
                .map(|l| match l.find("\"total_us\"") {
                    Some(i) => format!("{}…", &l[..i]),
                    None => l.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let t2 = Telemetry::enabled();
        {
            let _s = t2.span("stage");
        }
        t2.count("n", 9);
        assert_eq!(strip(&json), strip(&metrics_json(&t2.snapshot())));
    }

    #[test]
    fn empty_metrics_render_empty_arrays() {
        let json = metrics_json(&Metrics::default());
        assert!(json.contains("\"spans\": []"));
        assert!(json.contains("\"counters\": []"));
        assert!(json.contains("\"hists\": []"));
        assert_eq!(
            chrome_trace_json(&Metrics::default()),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n"
        );
    }

    #[test]
    fn histogram_with_zero_samples_has_zero_percentiles() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(99), 0);
        assert_eq!(h.percentile(100), 0);
    }

    #[test]
    fn histogram_single_sample_reports_its_bucket_at_every_percentile() {
        let mut h = Histogram::default();
        h.record(100);
        let bound = Histogram::bucket_bound(Histogram::bucket_index(100));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.percentile(1), bound);
        assert_eq!(h.percentile(50), bound);
        assert_eq!(h.percentile(99), bound);
        assert!(bound >= 100, "bucket bound must cover the sample");
    }

    #[test]
    fn histogram_clamps_values_beyond_the_top_bucket() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        h.record(1u64 << 40);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(h.percentile(50), u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exclusive_powers_of_two() {
        // Bucket 0 holds only the value 0.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        // A value always lands in a bucket whose bound covers it.
        for v in [0u64, 1, 7, 8, 1023, 1024, 123_456_789] {
            assert!(Histogram::bucket_bound(Histogram::bucket_index(v)) >= v);
        }
    }

    #[test]
    fn histogram_merge_is_associative_like_parallel_workers() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1, 50, 900]), mk(&[2, 2, 7]), mk(&[1u64 << 35]));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.count(), 7);
    }

    #[test]
    fn metrics_merge_sums_histogram_buckets() {
        let ta = Telemetry::enabled();
        ta.record_value("hist:rtt-us", 10);
        ta.record_value("hist:rtt-us", 10);
        let tb = Telemetry::enabled();
        tb.record_value("hist:rtt-us", 10);
        tb.record_value("hist:service-us", 5000);
        let mut merged = ta.snapshot();
        merged.merge(&tb.snapshot());
        assert_eq!(merged.hists["hist:rtt-us"].count(), 3);
        assert_eq!(
            merged.hists["hist:rtt-us"].buckets()[Histogram::bucket_index(10)],
            3
        );
        assert_eq!(merged.hists["hist:service-us"].count(), 1);
    }

    #[test]
    fn counters_only_handle_drops_spans_but_keeps_counters_and_hists() {
        let t = Telemetry::counters_only();
        assert!(t.is_enabled());
        {
            let _s = t.span("stage");
        }
        t.add_span("explicit", 0, 5);
        t.count("serve:ok", 1);
        t.record_value("hist:queue-wait-us", 42);
        let mut donor = Metrics::default();
        donor.spans.push(SpanEvent {
            name: "donated".into(),
            start_us: 0,
            dur_us: 1,
            trace: 7,
        });
        t.absorb(&donor, 100);
        let m = t.snapshot();
        assert!(m.spans.is_empty(), "counters_only keeps no raw spans");
        assert_eq!(m.counters.get("serve:ok"), Some(&1));
        assert_eq!(m.hists["hist:queue-wait-us"].count(), 1);
    }

    #[test]
    fn with_trace_tags_spans_and_chrome_trace_carries_the_id() {
        let t = Telemetry::enabled();
        let traced = t.with_trace(0xfeed);
        {
            let _s = traced.span("remote");
        }
        traced.add_span("wire", 3, 9);
        {
            let _s = t.span("local");
        }
        let m = t.snapshot();
        assert_eq!(m.spans.len(), 3);
        assert!(m
            .spans
            .iter()
            .any(|s| s.name == "remote" && s.trace == 0xfeed));
        assert!(m
            .spans
            .iter()
            .any(|s| s.name == "wire" && s.trace == 0xfeed));
        assert!(m.spans.iter().any(|s| s.name == "local" && s.trace == 0));
        let json = chrome_trace_json(&m);
        assert!(json.contains("\"args\":{\"trace\":\"000000000000feed\"}"));
        // Untraced spans carry no args object.
        assert!(json.contains("\"name\":\"local\""));
        let local = json.split("\"name\":\"local\"").nth(1).unwrap();
        let local_evt = local.split('}').next().unwrap();
        assert!(!local_evt.contains("args"));
    }

    #[test]
    fn absorb_shifts_spans_onto_the_host_timeline() {
        let donor = Telemetry::enabled().with_trace(0xabc);
        donor.add_span("inner", 10, 20);
        donor.count("cache:hits", 1);
        donor.record_value("hist:compile-us", 30);
        let host = Telemetry::enabled();
        host.absorb(&donor.snapshot(), 1000);
        let m = host.snapshot();
        assert_eq!(m.spans.len(), 1);
        assert_eq!(m.spans[0].start_us, 1010);
        assert_eq!(m.spans[0].dur_us, 20);
        assert_eq!(m.spans[0].trace, 0xabc);
        assert_eq!(m.counters.get("cache:hits"), Some(&1));
        assert_eq!(m.hists["hist:compile-us"].count(), 1);
    }

    #[test]
    fn exporters_escape_hostile_names_in_every_section() {
        let mut m = Metrics::default();
        let hostile = "a\"b\\c\nd\u{1}e";
        m.spans.push(SpanEvent {
            name: hostile.into(),
            start_us: 0,
            dur_us: 1,
            trace: 0,
        });
        m.counters.insert(hostile.into(), 1);
        let mut h = Histogram::default();
        h.record(1);
        m.hists.insert(hostile.into(), h);
        let escaped = "a\\\"b\\\\c\\nd\\u0001e";
        let trace = chrome_trace_json(&m);
        assert!(trace.contains(escaped), "chrome trace must escape: {trace}");
        assert!(!trace.contains('\u{1}'), "raw control char leaked");
        let metrics = metrics_json(&m);
        // The hostile name appears escaped in spans, counters, and hists.
        assert_eq!(metrics.matches(escaped).count(), 3, "{metrics}");
        assert!(!metrics.contains('\u{1}'));
    }

    #[test]
    fn metrics_json_renders_histogram_buckets_deterministically() {
        let t = Telemetry::enabled();
        t.record_value("hist:rtt-us", 3);
        t.record_value("hist:rtt-us", 3);
        let json = metrics_json(&t.snapshot());
        assert!(json.contains("\"name\": \"hist:rtt-us\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"p50_us\": 3"));
        // 32 comma-separated bucket counts, both samples in bucket 2.
        let buckets = json.split("\"buckets_us\": [").nth(1).unwrap();
        let buckets = buckets.split(']').next().unwrap();
        let counts: Vec<u64> = buckets.split(',').map(|c| c.parse().unwrap()).collect();
        assert_eq!(counts.len(), HISTOGRAM_BUCKETS);
        assert_eq!(counts[Histogram::bucket_index(3)], 2);
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn flight_recorder_ring_bounds_and_sequences_events() {
        let fr = FlightRecorder::new(3);
        assert_eq!(fr.capacity(), 3);
        assert!(!fr.record("accept", "conn", 0));
        assert!(!fr.record("request", "compile", 0xaa));
        assert!(!fr.record("fault", "net:reset", 0xaa));
        // Fourth event evicts the oldest.
        assert!(fr.record("panic", "worker died", 0xbb));
        let (events, dropped) = fr.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 1);
        assert_eq!(events[0].kind, "request");
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[2].kind, "panic");
        assert_eq!(events[2].seq, 3);
        assert_eq!(events[2].trace, 0xbb);
        // Timestamps are monotone.
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn flight_recorder_capacity_floor_is_one() {
        let fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        fr.record("a", "", 0);
        fr.record("b", "", 0);
        let (events, dropped) = fr.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
        assert_eq!(dropped, 1);
    }
}
