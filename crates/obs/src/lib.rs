//! # impact-obs — pipeline telemetry core
//!
//! A deliberately small span/counter recorder threaded through every stage
//! of the compilation pipeline (front end, verifier, call graph, inline
//! sub-phases, optimization passes, VM execution). Two properties shape
//! the design:
//!
//! * **Zero cost when disabled.** A disabled [`Telemetry`] handle is a
//!   `None` — [`Telemetry::span`] and [`Telemetry::count`] neither
//!   allocate nor read the clock, so instrumented code paths behave
//!   identically whether or not anyone is listening. This is the
//!   "minimum coverage instrumentation" discipline: observation must not
//!   perturb the thing observed.
//! * **No wall-clock in durable payloads.** Timings live only in
//!   clearly-marked `*_us` fields of the exported JSON, so consumers
//!   (tests, the campaign journal's byte-identical resume contract) can
//!   strip or avoid them. Counters — instruction counts, cache hits,
//!   site classes — are fully deterministic.
//!
//! Exporters: [`chrome_trace_json`] renders spans as Chrome trace-event
//! JSON (load it at `chrome://tracing` or <https://ui.perfetto.dev> for a
//! flamegraph); [`metrics_json`] renders aggregated per-stage counters
//! and timings as schema-versioned JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical counter names for the compilation service (pool, cache,
/// serve). Centralizing them here keeps the producer (driver) and the
/// consumers (metrics JSON assertions in tests and CI `jq` probes) from
/// drifting apart on spelling.
pub mod names {
    /// Tasks executed by a worker other than the one they were seeded to.
    pub const POOL_STEALS: &str = "pool:steals";
    /// Worker threads the pool actually ran with.
    pub const POOL_WORKERS: &str = "pool:workers";
    /// Cache probes that returned a validated entry.
    pub const CACHE_HITS: &str = "cache:hits";
    /// Cache probes that found no entry (includes quarantined probes,
    /// which degrade to a miss).
    pub const CACHE_MISSES: &str = "cache:misses";
    /// Entries published through the atomic staging path.
    pub const CACHE_STORES: &str = "cache:stores";
    /// Entries that failed validation and were renamed aside.
    pub const CACHE_QUARANTINED: &str = "cache:quarantined";
    /// Requests accepted off the socket (including ones later shed).
    pub const SERVE_REQUESTS: &str = "serve:requests";
    /// Requests that compiled and responded `ok`.
    pub const SERVE_OK: &str = "serve:ok";
    /// Requests that responded `error` (bad protocol, failed compile,
    /// worker panic).
    pub const SERVE_ERRORS: &str = "serve:errors";
    /// Requests shed with an immediate `busy` response (queue full).
    pub const SERVE_SHED: &str = "serve:shed";
    /// `ping` health checks answered by the daemon.
    pub const SERVE_PINGS: &str = "serve:pings";
    /// Entries (live or quarantined) deleted by budget eviction.
    pub const CACHE_EVICTIONS: &str = "cache:evictions";
    /// On-disk bytes reclaimed by budget eviction.
    pub const CACHE_EVICTED_BYTES: &str = "cache:evicted-bytes";
    /// Eviction passes that ran out of unpinned victims while still over
    /// budget (an in-flight read kept its entry alive).
    pub const CACHE_PIN_SKIPS: &str = "cache:pin-skips";
    /// Deterministic service faults that actually fired (each also bumps
    /// a dynamic `chaos:<fault-key>` counter naming the exact point).
    pub const CHAOS_INJECTED: &str = "chaos:injected";
    /// Retried requests answered verbatim from the daemon's idempotency
    /// table instead of recompiling.
    pub const SERVE_IDEMPOTENT_REPLAYS: &str = "serve:idempotent-replays";
    /// Connections shed at accept time by the `--max-conns` cap.
    pub const SERVE_CONN_CAPPED: &str = "serve:conn-capped";
    /// Client circuit breakers that tripped open (threshold consecutive
    /// retryable failures on one endpoint).
    pub const BREAKER_OPENED: &str = "breaker:opened";
    /// Half-open probes sent to cooled-down endpoints.
    pub const BREAKER_PROBES: &str = "breaker:probes";
    /// Breakers that closed again after a successful probe or request.
    pub const BREAKER_RECOVERED: &str = "breaker:recovered";
    /// Retryable endpoint failures that moved the client to another
    /// endpoint in the fleet.
    pub const NET_FAILOVERS: &str = "net:failovers";

    /// Every service counter name, for exhaustiveness checks.
    pub const ALL: &[&str] = &[
        POOL_STEALS,
        POOL_WORKERS,
        CACHE_HITS,
        CACHE_MISSES,
        CACHE_STORES,
        CACHE_QUARANTINED,
        CACHE_EVICTIONS,
        CACHE_EVICTED_BYTES,
        CACHE_PIN_SKIPS,
        SERVE_REQUESTS,
        SERVE_OK,
        SERVE_ERRORS,
        SERVE_SHED,
        SERVE_PINGS,
        SERVE_IDEMPOTENT_REPLAYS,
        SERVE_CONN_CAPPED,
        BREAKER_OPENED,
        BREAKER_PROBES,
        BREAKER_RECOVERED,
        NET_FAILOVERS,
        CHAOS_INJECTED,
    ];
}

/// One completed span: a named region of pipeline work with its offset
/// from the telemetry epoch and its duration, both in microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name, e.g. `inline:plan` or `opt:constant-fold`.
    pub name: String,
    /// Start offset from the handle's creation, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Aggregated statistics for one span name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Stage name.
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total time across all entries, in microseconds.
    pub total_us: u64,
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
}

struct Inner {
    base: Instant,
    state: Mutex<Collector>,
}

/// A cheaply-clonable telemetry handle. Disabled by default; every clone
/// shares the same recording.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle: never allocates, never reads the clock.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle recording into a fresh collector.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                base: Instant::now(),
                state: Mutex::new(Collector::default()),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the region is recorded when the returned guard drops.
    /// On a disabled handle this is a no-op returning an inert guard.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { rec: None },
            Some(inner) => Span {
                rec: Some(SpanRec {
                    inner: Arc::clone(inner),
                    name: name.to_string(),
                    started: Instant::now(),
                }),
            },
        }
    }

    /// Adds `n` to the named counter. No-op on a disabled handle.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            *st.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Takes a snapshot of everything recorded so far. A disabled handle
    /// snapshots as empty.
    pub fn snapshot(&self) -> Metrics {
        match &self.inner {
            None => Metrics::default(),
            Some(inner) => {
                let st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
                Metrics {
                    spans: st.spans.clone(),
                    counters: st.counters.clone(),
                }
            }
        }
    }
}

struct SpanRec {
    inner: Arc<Inner>,
    name: String,
    started: Instant,
}

/// RAII guard for an open span; records on drop.
pub struct Span {
    rec: Option<SpanRec>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let dur_us = rec.started.elapsed().as_micros() as u64;
            let start_us = rec
                .started
                .saturating_duration_since(rec.inner.base)
                .as_micros() as u64;
            let mut st = rec.inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.spans.push(SpanEvent {
                name: rec.name,
                start_us,
                dur_us,
            });
        }
    }
}

/// A snapshot of recorded telemetry: raw span events plus counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Every recorded span, in completion order.
    pub spans: Vec<SpanEvent>,
    /// Counter values, keyed by name (sorted).
    pub counters: BTreeMap<String, u64>,
}

impl Metrics {
    /// Folds another snapshot into this one: spans are appended, counters
    /// summed. Used by `batch`/`fuzz` to aggregate per-unit metrics into a
    /// campaign-level summary.
    pub fn merge(&mut self, other: &Metrics) {
        self.spans.extend(other.spans.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Aggregates spans by name (count + total duration), sorted by name.
    pub fn span_stats(&self) -> Vec<SpanStat> {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(&s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_us;
        }
        by_name
            .into_iter()
            .map(|(name, (count, total_us))| SpanStat {
                name: name.to_string(),
                count,
                total_us,
            })
            .collect()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as Chrome trace-event JSON (the `traceEvents`
/// array format): one complete (`"ph":"X"`) event per span, microsecond
/// timestamps. Loads in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(m: &Metrics) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in m.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"impact\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{}}}",
            esc(&s.name),
            s.start_us,
            s.dur_us
        ));
    }
    out.push_str("]}\n");
    out
}

/// Schema version of [`metrics_json`] output.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Renders a snapshot as schema-versioned metrics JSON. Wall-clock data
/// is confined to fields named `*_us`; everything else is deterministic
/// for a given input, so tests can compare two runs after stripping the
/// `*_us` fields.
pub fn metrics_json(m: &Metrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"version\": {METRICS_SCHEMA_VERSION},\n  \"kind\": \"impact-metrics\",\n  \"spans\": ["
    ));
    let stats = m.span_stats();
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}}}",
            esc(&s.name),
            s.count,
            s.total_us
        ));
    }
    if !stats.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counters\": [");
    for (i, (k, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"value\": {}}}",
            esc(k),
            v
        ));
    }
    if !m.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_counter_names_are_unique_and_namespaced() {
        let mut seen = std::collections::BTreeSet::new();
        for n in names::ALL {
            assert!(seen.insert(n), "duplicate counter name {n}");
            assert!(
                n.starts_with("pool:")
                    || n.starts_with("cache:")
                    || n.starts_with("serve:")
                    || n.starts_with("chaos:")
                    || n.starts_with("breaker:")
                    || n.starts_with("net:"),
                "unnamespaced counter {n}"
            );
        }
    }

    /// Scans this crate's own source for `pub const` counter names inside
    /// `mod names` and asserts each one is registered in `names::ALL`, so
    /// a counter added later can't silently drift out of the registry.
    #[test]
    fn every_declared_counter_name_is_registered_in_all() {
        let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/src/lib.rs"))
            .expect("crate source is readable");
        let mut declared = Vec::new();
        for line in src.lines() {
            let Some(rest) = line.trim_start().strip_prefix("pub const ") else {
                continue;
            };
            // Only counter-name string constants: `NAME: &str = "..."`.
            let Some((_, value)) = rest.split_once(": &str = \"") else {
                continue;
            };
            let Some((name, _)) = value.split_once('"') else {
                continue;
            };
            declared.push(name.to_string());
        }
        assert!(
            declared.len() >= names::ALL.len(),
            "source scan found {} names, registry has {}",
            declared.len(),
            names::ALL.len()
        );
        for name in &declared {
            assert!(
                names::ALL.contains(&name.as_str()),
                "counter `{name}` is declared but missing from names::ALL"
            );
        }
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        {
            let _s = t.span("stage");
            t.count("things", 5);
        }
        let m = t.snapshot();
        assert!(m.spans.is_empty());
        assert!(m.counters.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_and_counters_record_and_aggregate() {
        let t = Telemetry::enabled();
        {
            let _a = t.span("phase");
        }
        {
            let _b = t.span("phase");
        }
        t.count("items", 3);
        t.count("items", 4);
        let m = t.snapshot();
        assert_eq!(m.spans.len(), 2);
        assert_eq!(m.counters.get("items"), Some(&7));
        let stats = m.span_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "phase");
        assert_eq!(stats[0].count, 2);
    }

    #[test]
    fn clones_share_one_collector() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.count("shared", 1);
        assert_eq!(t.snapshot().counters.get("shared"), Some(&1));
    }

    #[test]
    fn merge_appends_spans_and_sums_counters() {
        let mut a = Metrics::default();
        a.counters.insert("x".into(), 2);
        a.spans.push(SpanEvent {
            name: "s".into(),
            start_us: 0,
            dur_us: 10,
        });
        let mut b = Metrics::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        a.merge(&b);
        assert_eq!(a.counters.get("x"), Some(&5));
        assert_eq!(a.counters.get("y"), Some(&1));
        assert_eq!(a.spans.len(), 1);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("a\"b");
        }
        let json = chrome_trace_json(&t.snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("a\\\"b"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn metrics_json_shape_and_determinism_without_us_fields() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("stage");
        }
        t.count("n", 9);
        let json = metrics_json(&t.snapshot());
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"kind\": \"impact-metrics\""));
        assert!(json.contains("\"name\": \"stage\""));
        assert!(json.contains("\"name\": \"n\", \"value\": 9"));
        // Stripping the timing fields yields a deterministic document.
        let strip = |s: &str| -> String {
            s.lines()
                .map(|l| match l.find("\"total_us\"") {
                    Some(i) => format!("{}…", &l[..i]),
                    None => l.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let t2 = Telemetry::enabled();
        {
            let _s = t2.span("stage");
        }
        t2.count("n", 9);
        assert_eq!(strip(&json), strip(&metrics_json(&t2.snapshot())));
    }

    #[test]
    fn empty_metrics_render_empty_arrays() {
        let json = metrics_json(&Metrics::default());
        assert!(json.contains("\"spans\": []"));
        assert!(json.contains("\"counters\": []"));
        assert_eq!(
            chrome_trace_json(&Metrics::default()),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n"
        );
    }
}
