//! Local common-subexpression elimination.
//!
//! The paper names CSE among the optimizations whose scope inline
//! expansion enlarges (§1, §1.2). This pass value-numbers pure
//! instructions within each basic block: a recomputation of an
//! already-available value becomes a `Mov` from the register that holds
//! it (copy propagation and DCE then erase the `Mov`).
//!
//! Registers are versioned so that redefinitions invalidate stale
//! availability facts — necessary because the IL is not SSA.

use std::collections::HashMap;

use impact_il::{BinOp, CmpOp, Function, Inst, Reg, UnOp, Width};

/// A versioned operand: the register plus the definition generation its
/// value was read at.
type VReg = (Reg, u32);

/// Hashable description of a pure computation.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(i64),
    Un(UnOp, VReg),
    Bin(BinOp, VReg, VReg),
    Cmp(CmpOp, VReg, VReg),
    AddrOfGlobal(u32),
    AddrOfSlot(u32),
    AddrOfFunc(u32),
    Ext(Width, bool, VReg),
}

/// Runs local CSE over every block of `func`. Returns the number of
/// instructions replaced by copies.
pub fn local_cse(func: &mut Function) -> usize {
    let mut changed = 0;
    let nregs = func.num_regs as usize;
    for block in &mut func.blocks {
        let mut version = vec![0u32; nregs];
        // available[key] = (holder register, holder's version at insert).
        let mut available: HashMap<Key, VReg> = HashMap::new();
        for inst in &mut block.insts {
            let v = |r: Reg, version: &Vec<u32>| (r, version[r.index()]);
            let key = match inst {
                Inst::Const { value, .. } => Some(Key::Const(*value)),
                Inst::Un { op, src, .. } => Some(Key::Un(*op, v(*src, &version))),
                Inst::Bin { op, lhs, rhs, .. } => {
                    // Canonicalize commutative operands for more hits.
                    let (mut a, mut b) = (v(*lhs, &version), v(*rhs, &version));
                    if is_commutative(*op) && b < a {
                        std::mem::swap(&mut a, &mut b);
                    }
                    Some(Key::Bin(*op, a, b))
                }
                Inst::Cmp { op, lhs, rhs, .. } => {
                    Some(Key::Cmp(*op, v(*lhs, &version), v(*rhs, &version)))
                }
                Inst::AddrOfGlobal { global, .. } => Some(Key::AddrOfGlobal(global.0)),
                Inst::AddrOfSlot { slot, .. } => Some(Key::AddrOfSlot(slot.0)),
                Inst::AddrOfFunc { func, .. } => Some(Key::AddrOfFunc(func.0)),
                Inst::Ext {
                    width, signed, src, ..
                } => Some(Key::Ext(*width, *signed, v(*src, &version))),
                // Loads read mutable memory; calls and stores have
                // effects; plain moves are copy-propagation's job.
                Inst::Mov { .. } | Inst::Load { .. } | Inst::Store { .. } | Inst::Call { .. } => {
                    None
                }
            };
            let dst = inst.def();
            if let (Some(key), Some(d)) = (key, dst) {
                match available.get(&key) {
                    Some(&(holder, at_version))
                        if version[holder.index()] == at_version && holder != d =>
                    {
                        *inst = Inst::Mov {
                            dst: d,
                            src: holder,
                        };
                        changed += 1;
                    }
                    _ => {
                        // Record availability under the *new* version of d
                        // (set below).
                        available.insert(key, (d, version[d.index()] + 1));
                    }
                }
            }
            if let Some(d) = inst.def() {
                version[d.index()] += 1;
            }
        }
    }
    changed
}

fn is_commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{BlockId, FunctionBuilder, Terminator};

    #[test]
    fn dedupes_repeated_constants_and_addresses() {
        let mut fb = FunctionBuilder::new("t", 0);
        let s = fb.add_slot("buf", 16, 8);
        let c1 = fb.const_(4);
        let a1 = fb.addr_of_slot(s);
        let c2 = fb.const_(4);
        let a2 = fb.addr_of_slot(s);
        let sum = fb.bin(BinOp::Add, c2, a2);
        fb.terminate(Terminator::Return(Some(sum)));
        let mut f = fb.finish();
        let changed = local_cse(&mut f);
        assert_eq!(changed, 2);
        let b = f.block(BlockId(0));
        assert_eq!(b.insts[2], Inst::Mov { dst: c2, src: c1 });
        assert_eq!(b.insts[3], Inst::Mov { dst: a2, src: a1 });
    }

    #[test]
    fn dedupes_commutative_operand_orders() {
        let mut fb = FunctionBuilder::new("t", 2);
        let a = Reg(0);
        let b = Reg(1);
        let x = fb.bin(BinOp::Add, a, b);
        let y = fb.bin(BinOp::Add, b, a);
        let z = fb.bin(BinOp::Sub, a, b);
        let w = fb.bin(BinOp::Sub, b, a); // NOT commutative: must stay
        let r = fb.bin(BinOp::Xor, x, y);
        let r2 = fb.bin(BinOp::Xor, z, w);
        let out = fb.bin(BinOp::Or, r, r2);
        fb.terminate(Terminator::Return(Some(out)));
        let mut f = fb.finish();
        let changed = local_cse(&mut f);
        assert_eq!(changed, 1, "only the add is deduped");
        assert_eq!(f.block(BlockId(0)).insts[1], Inst::Mov { dst: y, src: x });
    }

    #[test]
    fn redefinition_invalidates_availability() {
        // x = a + b; a = 0; y = a + b — must NOT reuse x.
        let mut fb = FunctionBuilder::new("t", 2);
        let a = Reg(0);
        let b = Reg(1);
        let _x = fb.bin(BinOp::Add, a, b);
        fb.push(Inst::Const { dst: a, value: 0 });
        let y = fb.bin(BinOp::Add, a, b);
        fb.terminate(Terminator::Return(Some(y)));
        let mut f = fb.finish();
        let changed = local_cse(&mut f);
        assert_eq!(changed, 0);
        assert!(matches!(f.block(BlockId(0)).insts[2], Inst::Bin { .. }));
    }

    #[test]
    fn loads_are_never_merged() {
        let mut fb = FunctionBuilder::new("t", 1);
        let p = Reg(0);
        let l1 = fb.load(p, Width::W4, true);
        // A store may change the value in between.
        fb.store(p, l1, Width::W4);
        let l2 = fb.load(p, Width::W4, true);
        let out = fb.bin(BinOp::Add, l1, l2);
        fb.terminate(Terminator::Return(Some(out)));
        let mut f = fb.finish();
        assert_eq!(local_cse(&mut f), 0);
    }

    #[test]
    fn availability_does_not_cross_blocks() {
        let mut fb = FunctionBuilder::new("t", 0);
        let next = fb.new_block();
        let _c1 = fb.const_(9);
        fb.terminate(Terminator::Jump(next));
        fb.switch_to(next);
        let c2 = fb.const_(9);
        fb.terminate(Terminator::Return(Some(c2)));
        let mut f = fb.finish();
        assert_eq!(local_cse(&mut f), 0);
    }

    #[test]
    fn holder_invalidation_when_holder_is_overwritten() {
        // c1 = 5; c1 = 6; c2 = 5 — c2 must not become Mov from c1.
        let mut fb = FunctionBuilder::new("t", 0);
        let c1 = fb.const_(5);
        fb.push(Inst::Const { dst: c1, value: 6 });
        let c2 = fb.const_(5);
        fb.terminate(Terminator::Return(Some(c2)));
        let mut f = fb.finish();
        assert_eq!(local_cse(&mut f), 0);
        assert!(matches!(
            f.block(BlockId(0)).insts[2],
            Inst::Const { value: 5, .. }
        ));
    }
}
