//! Constant folding and copy propagation (local, per basic block).
//!
//! Both passes track facts within one basic block only; facts never cross
//! block boundaries, which keeps the passes linear and trivially correct
//! for non-SSA code.

use std::collections::HashMap;

use impact_il::{Function, Inst, Reg, Terminator};

use crate::{eval_bin_const, eval_cmp_const, eval_ext_const, eval_un_const, rewrite_uses};

/// Folds constant operations and propagates known constants within each
/// block. A `Branch` on a known condition becomes a `Jump` (the seed for
/// [`crate::jump_optimization`]).
///
/// Returns the number of instructions or terminators rewritten.
pub fn constant_fold(func: &mut Function) -> usize {
    let mut changed = 0;
    for block in &mut func.blocks {
        let mut known: HashMap<Reg, i64> = HashMap::new();
        for inst in &mut block.insts {
            let rewritten = match *inst {
                Inst::Mov { dst, src } => known.get(&src).map(|&v| (dst, v)),
                Inst::Un { op, dst, src } => known.get(&src).map(|&v| (dst, eval_un_const(op, v))),
                Inst::Bin { op, dst, lhs, rhs } => match (known.get(&lhs), known.get(&rhs)) {
                    (Some(&a), Some(&b)) => eval_bin_const(op, a, b).map(|v| (dst, v)),
                    _ => None,
                },
                Inst::Cmp { op, dst, lhs, rhs } => match (known.get(&lhs), known.get(&rhs)) {
                    (Some(&a), Some(&b)) => Some((dst, eval_cmp_const(op, a, b))),
                    _ => None,
                },
                Inst::Ext {
                    dst,
                    src,
                    width,
                    signed,
                } => known
                    .get(&src)
                    .map(|&v| (dst, eval_ext_const(v, width, signed))),
                _ => None,
            };
            if let Some((dst, value)) = rewritten {
                *inst = Inst::Const { dst, value };
                changed += 1;
            }
            // Update the constant map.
            match inst {
                Inst::Const { dst, value } => {
                    known.insert(*dst, *value);
                }
                other => {
                    if let Some(d) = other.def() {
                        known.remove(&d);
                    }
                }
            }
        }
        if let Terminator::Branch {
            cond,
            then_to,
            else_to,
        } = block.term
        {
            if let Some(&v) = known.get(&cond) {
                block.term = Terminator::Jump(if v != 0 { then_to } else { else_to });
                changed += 1;
            }
        }
    }
    changed
}

/// Replaces uses of registers that are plain copies of another register
/// within the block. Copies are invalidated when either side is
/// redefined.
///
/// This removes the parameter-buffering `Mov`s that physical inline
/// expansion introduces (§2.4: "copy propagation and other optimizations
/// can be applied to eliminate unnecessary overhead instructions").
///
/// Returns the number of uses rewritten.
pub fn copy_propagation(func: &mut Function) -> usize {
    let mut changed = 0;
    for block in &mut func.blocks {
        // copy_of[r] = s means "r currently holds the same value as s".
        let mut copy_of: HashMap<Reg, Reg> = HashMap::new();
        for inst in &mut block.insts {
            // Resolve uses through the copy map first.
            let before = inst.clone();
            rewrite_uses(inst, &copy_of);
            if *inst != before {
                changed += 1;
            }
            // Kill facts about the redefined register (both directions).
            if let Some(d) = inst.def() {
                copy_of.remove(&d);
                copy_of.retain(|_, v| *v != d);
            }
            // Record a new copy fact.
            if let Inst::Mov { dst, src } = *inst {
                if dst != src {
                    copy_of.insert(dst, src);
                }
            }
        }
        // Rewrite terminator uses too.
        match &mut block.term {
            Terminator::Branch { cond, .. } => {
                if let Some(&n) = copy_of.get(cond) {
                    *cond = n;
                    changed += 1;
                }
            }
            Terminator::Return(Some(r)) => {
                if let Some(&n) = copy_of.get(r) {
                    *r = n;
                    changed += 1;
                }
            }
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{BinOp, BlockId, CmpOp, FunctionBuilder, UnOp, Width};

    fn fold_once(build: impl FnOnce(&mut FunctionBuilder)) -> Function {
        let mut fb = FunctionBuilder::new("t", 0);
        build(&mut fb);
        let mut f = fb.finish();
        constant_fold(&mut f);
        f
    }

    #[test]
    fn folds_binary_chain() {
        let f = fold_once(|fb| {
            let a = fb.const_(6);
            let b = fb.const_(7);
            let c = fb.bin(BinOp::Mul, a, b);
            fb.terminate(Terminator::Return(Some(c)));
        });
        assert!(matches!(
            f.block(BlockId(0)).insts[2],
            Inst::Const { value: 42, .. }
        ));
    }

    #[test]
    fn folds_unary_cmp_ext() {
        let f = fold_once(|fb| {
            let a = fb.const_(300);
            let n = fb.un(UnOp::Neg, a);
            let c = fb.cmp(CmpOp::SLt, n, a);
            let e = fb.push_ext(a, Width::W1, true);
            fb.terminate(Terminator::Return(Some(c)));
            let _ = e;
        });
        assert!(matches!(
            f.block(BlockId(0)).insts[1],
            Inst::Const { value: -300, .. }
        ));
        assert!(matches!(
            f.block(BlockId(0)).insts[2],
            Inst::Const { value: 1, .. }
        ));
        assert!(matches!(
            f.block(BlockId(0)).insts[3],
            Inst::Const { value: 44, .. }
        ));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let f = fold_once(|fb| {
            let a = fb.const_(1);
            let z = fb.const_(0);
            let d = fb.bin(BinOp::Div, a, z);
            fb.terminate(Terminator::Return(Some(d)));
        });
        assert!(matches!(f.block(BlockId(0)).insts[2], Inst::Bin { .. }));
    }

    #[test]
    fn redefinition_invalidates_constants() {
        // r1 = 5; r1 = load [...]; r2 = r1 + 1 must NOT fold to 6.
        let mut fb = FunctionBuilder::new("t", 1);
        let addr = impact_il::Reg(0);
        let r1 = fb.const_(5);
        // Redefine r1 with a load by hand-crafting the instruction.
        fb.push(Inst::Load {
            dst: r1,
            addr,
            width: Width::W8,
            signed: true,
        });
        let one = fb.const_(1);
        let sum = fb.bin(BinOp::Add, r1, one);
        fb.terminate(Terminator::Return(Some(sum)));
        let mut f = fb.finish();
        constant_fold(&mut f);
        assert!(matches!(f.block(BlockId(0)).insts[3], Inst::Bin { .. }));
    }

    #[test]
    fn folds_branch_on_constant() {
        let mut fb = FunctionBuilder::new("t", 0);
        let t = fb.new_block();
        let e = fb.new_block();
        let c = fb.const_(1);
        fb.terminate(Terminator::Branch {
            cond: c,
            then_to: t,
            else_to: e,
        });
        fb.switch_to(t);
        fb.terminate(Terminator::Return(None));
        fb.switch_to(e);
        fb.terminate(Terminator::Return(None));
        let mut f = fb.finish();
        constant_fold(&mut f);
        assert_eq!(f.block(BlockId(0)).term, Terminator::Jump(t));
    }

    #[test]
    fn copy_prop_rewrites_uses() {
        let mut fb = FunctionBuilder::new("t", 1);
        let p = impact_il::Reg(0);
        let copy = fb.new_reg();
        fb.mov(copy, p);
        let one = fb.const_(1);
        let sum = fb.bin(BinOp::Add, copy, one);
        fb.terminate(Terminator::Return(Some(sum)));
        let mut f = fb.finish();
        let changed = copy_propagation(&mut f);
        assert!(changed > 0);
        // The add now reads r0 directly.
        assert!(matches!(
            f.block(BlockId(0)).insts[2],
            Inst::Bin { lhs, .. } if lhs == p
        ));
    }

    #[test]
    fn copy_prop_invalidated_by_redefinition_of_source() {
        // copy = p; p = 9; use copy — must keep reading `copy`.
        let mut fb = FunctionBuilder::new("t", 1);
        let p = impact_il::Reg(0);
        let copy = fb.new_reg();
        fb.mov(copy, p);
        fb.push(Inst::Const { dst: p, value: 9 });
        let one = fb.const_(1);
        let sum = fb.bin(BinOp::Add, copy, one);
        fb.terminate(Terminator::Return(Some(sum)));
        let mut f = fb.finish();
        copy_propagation(&mut f);
        assert!(matches!(
            f.block(BlockId(0)).insts[3],
            Inst::Bin { lhs, .. } if lhs == copy
        ));
    }
}
