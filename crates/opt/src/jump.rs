//! Jump optimization: jump threading, trivial-branch collapsing,
//! unreachable-block removal, and straight-line block merging.
//!
//! The paper notes that inlined call/return instructions are "replaced
//! with unconditional jump instructions into/out of the inlined function
//! bodies" (§4.4); this pass is what removes that overhead when the
//! optimizer runs after expansion.

use std::collections::HashMap;

use impact_il::{BlockId, Function, Terminator};

use crate::predecessors;

/// Runs all jump optimizations to a local fixpoint. Returns the number of
/// rewrites performed.
pub fn jump_optimization(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut changed = 0;
        changed += thread_jumps(func);
        changed += collapse_trivial_branches(func);
        changed += remove_unreachable_blocks(func);
        changed += merge_straight_line(func);
        total += changed;
        if changed == 0 {
            return total;
        }
    }
}

/// Resolves chains of empty blocks that just jump onward: a terminator
/// targeting an empty `jump`-only block is redirected to its final
/// destination.
fn thread_jumps(func: &mut Function) -> usize {
    // forward[b] = target if block b is empty and ends in Jump(target).
    let forward: Vec<Option<BlockId>> = func
        .blocks
        .iter()
        .map(|b| match (&b.insts.is_empty(), &b.term) {
            (true, Terminator::Jump(t)) => Some(*t),
            _ => None,
        })
        .collect();
    let max_hops = func.blocks.len();
    let resolve = |mut b: BlockId| {
        // Follow the chain with a hop budget to survive empty jump cycles
        // (an empty infinite loop is valid IL).
        let mut hops = 0;
        while let Some(next) = forward[b.index()] {
            if next == b || hops > max_hops {
                break;
            }
            b = next;
            hops += 1;
        }
        b
    };
    let mut changed = 0;
    for b in &mut func.blocks {
        let before = b.term.clone();
        b.term.map_successors(resolve);
        if b.term != before {
            changed += 1;
        }
    }
    changed
}

/// `branch c, X, X` → `jump X`.
fn collapse_trivial_branches(func: &mut Function) -> usize {
    let mut changed = 0;
    for b in &mut func.blocks {
        if let Terminator::Branch {
            then_to, else_to, ..
        } = b.term
        {
            if then_to == else_to {
                b.term = Terminator::Jump(then_to);
                changed += 1;
            }
        }
    }
    changed
}

/// Deletes blocks unreachable from the entry and renumbers the rest.
fn remove_unreachable_blocks(func: &mut Function) -> usize {
    let n = func.blocks.len();
    let mut reachable = vec![false; n];
    let mut work = vec![0usize];
    reachable[0] = true;
    while let Some(v) = work.pop() {
        func.blocks[v].term.for_each_successor(|s| {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                work.push(s.index());
            }
        });
    }
    if reachable.iter().all(|&r| r) {
        return 0;
    }
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let mut kept = Vec::with_capacity(n);
    for (i, block) in std::mem::take(&mut func.blocks).into_iter().enumerate() {
        if reachable[i] {
            remap.insert(BlockId::from_index(i), BlockId::from_index(kept.len()));
            kept.push(block);
        }
    }
    let removed = n - kept.len();
    func.blocks = kept;
    for b in &mut func.blocks {
        b.term.map_successors(|t| remap[&t]);
    }
    removed
}

/// Merges `A: ...; jump B` with `B` when `B`'s only predecessor is `A`
/// (and `B != A`), splicing `B`'s instructions into `A`.
fn merge_straight_line(func: &mut Function) -> usize {
    let mut changed = 0;
    loop {
        let preds = predecessors(func);
        let mut merged = false;
        for a in 0..func.blocks.len() {
            let Terminator::Jump(b) = func.blocks[a].term else {
                continue;
            };
            let bi = b.index();
            if bi == a || preds[bi].len() != 1 {
                continue;
            }
            // Splice B into A.
            let b_block = func.blocks[bi].clone();
            func.blocks[a].insts.extend(b_block.insts);
            func.blocks[a].term = b_block.term;
            // B becomes unreachable; the next remove_unreachable_blocks
            // call cleans it up. Make it self-contained so the CFG stays
            // valid meanwhile.
            func.blocks[bi].insts.clear();
            func.blocks[bi].term = Terminator::Return(None);
            changed += 1;
            merged = true;
            break; // predecessor lists are stale now; recompute
        }
        if !merged {
            break;
        }
        // Clean up the detached block before the next scan.
        changed += remove_unreachable_blocks(func);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{FunctionBuilder, Inst, Reg};

    #[test]
    fn threads_empty_jump_chain() {
        let mut fb = FunctionBuilder::new("t", 0);
        let hop1 = fb.new_block();
        let hop2 = fb.new_block();
        let dest = fb.new_block();
        fb.terminate(Terminator::Jump(hop1));
        fb.switch_to(hop1);
        fb.terminate(Terminator::Jump(hop2));
        fb.switch_to(hop2);
        fb.terminate(Terminator::Jump(dest));
        fb.switch_to(dest);
        let v = fb.const_(9);
        fb.terminate(Terminator::Return(Some(v)));
        let mut f = fb.finish();
        let changed = jump_optimization(&mut f);
        assert!(changed > 0);
        // Everything collapses into a single block.
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term, Terminator::Return(Some(_))));
    }

    #[test]
    fn collapses_branch_with_equal_targets() {
        let mut fb = FunctionBuilder::new("t", 1);
        let t = fb.new_block();
        fb.terminate(Terminator::Branch {
            cond: Reg(0),
            then_to: t,
            else_to: t,
        });
        fb.switch_to(t);
        fb.terminate(Terminator::Return(None));
        let mut f = fb.finish();
        jump_optimization(&mut f);
        assert!(f
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Branch { .. })));
    }

    #[test]
    fn removes_unreachable_blocks() {
        let mut fb = FunctionBuilder::new("t", 0);
        let dead = fb.new_block();
        fb.terminate(Terminator::Return(None));
        fb.switch_to(dead);
        let v = fb.const_(1);
        fb.terminate(Terminator::Return(Some(v)));
        let mut f = fb.finish();
        assert_eq!(f.blocks.len(), 2);
        jump_optimization(&mut f);
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn merges_single_pred_chains_with_instructions() {
        let mut fb = FunctionBuilder::new("t", 0);
        let second = fb.new_block();
        let a = fb.const_(1);
        fb.terminate(Terminator::Jump(second));
        fb.switch_to(second);
        let b = fb.const_(2);
        fb.push(Inst::Bin {
            op: impact_il::BinOp::Add,
            dst: b,
            lhs: a,
            rhs: b,
        });
        fb.terminate(Terminator::Return(Some(b)));
        let mut f = fb.finish();
        jump_optimization(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn keeps_empty_infinite_loop_alive() {
        let mut fb = FunctionBuilder::new("t", 0);
        let spin = fb.new_block();
        fb.terminate(Terminator::Jump(spin));
        fb.switch_to(spin);
        fb.terminate(Terminator::Jump(spin));
        let mut f = fb.finish();
        jump_optimization(&mut f);
        // Must not crash or delete the loop; the function still has a
        // block jumping to itself.
        assert!(f
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.term == Terminator::Jump(BlockId::from_index(i))));
    }

    #[test]
    fn does_not_merge_shared_successor() {
        // Two predecessors both jump to the same block: no merge.
        let mut fb = FunctionBuilder::new("t", 1);
        let left = fb.new_block();
        let right = fb.new_block();
        let join = fb.new_block();
        fb.terminate(Terminator::Branch {
            cond: Reg(0),
            then_to: left,
            else_to: right,
        });
        fb.switch_to(left);
        let a = fb.const_(1);
        fb.terminate(Terminator::Jump(join));
        fb.switch_to(right);
        let b = fb.const_(2);
        fb.terminate(Terminator::Jump(join));
        fb.switch_to(join);
        let c = fb.bin(impact_il::BinOp::Add, a, b);
        fb.terminate(Terminator::Return(Some(c)));
        let mut f = fb.finish();
        jump_optimization(&mut f);
        // join must still exist separately (4 blocks stay 4).
        assert_eq!(f.blocks.len(), 4);
    }
}
