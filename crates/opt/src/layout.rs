//! Profile-guided basic-block layout (extension).
//!
//! The paper's companion work (its reference [17], Chang & Hwu, *Trace
//! Selection for Compiling Large C Application Programs to Microcode*)
//! lays code out along the hot paths the profile exposes. This pass is
//! the block-level version: starting from the entry, each block is
//! followed by its hottest not-yet-placed successor, so the frequent path
//! through a function occupies consecutive code addresses. Execution
//! semantics are unchanged (IL jumps are explicit); what moves is the
//! synthetic code layout — measurable with the VM's instruction-cache
//! simulator, where hot-path contiguity turns conflict misses into hits.

use std::collections::HashMap;

use impact_il::{BlockId, Function, Terminator};

/// Reorders `func`'s blocks along hot chains.
///
/// `block_counts` and `branch_taken` are the per-block slices of a
/// [`impact_vm::Profile`]-style measurement for this function (execution
/// counts, and taken-counts of each block's branch). Returns `true` if
/// the order changed.
///
/// # Panics
///
/// Panics if the count slices are shorter than the block list.
pub fn reorder_blocks(func: &mut Function, block_counts: &[u64], branch_taken: &[u64]) -> bool {
    let n = func.blocks.len();
    assert!(block_counts.len() >= n, "block_counts too short");
    assert!(branch_taken.len() >= n, "branch_taken too short");
    if n <= 2 {
        return false;
    }

    // Weight of the edge b -> successor s, from the profile.
    let edge_weight = |b: usize| -> Vec<(BlockId, u64)> {
        match &func.blocks[b].term {
            Terminator::Jump(t) => vec![(*t, block_counts[b])],
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                let execs = block_counts[b];
                let taken = branch_taken[b].min(execs);
                vec![(*then_to, taken), (*else_to, execs - taken)]
            }
            _ => vec![],
        }
    };

    let mut placed = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    // Greedy chains: start at the entry; at each step fall through to the
    // hottest unplaced successor. When the chain dies, restart at the
    // hottest unplaced block.
    let mut current = Some(0usize);
    loop {
        let Some(b) = current else {
            // Pick the hottest unplaced block to start a new chain.
            match (0..n)
                .filter(|&i| !placed[i])
                .max_by_key(|&i| (block_counts[i], std::cmp::Reverse(i)))
            {
                Some(next) => {
                    current = Some(next);
                    continue;
                }
                None => break,
            }
        };
        placed[b] = true;
        order.push(b);
        current = edge_weight(b)
            .into_iter()
            .filter(|(t, _)| !placed[t.index()])
            .max_by_key(|&(_, w)| w)
            .map(|(t, _)| t.index());
    }

    if order.iter().enumerate().all(|(i, &b)| i == b) {
        return false;
    }

    // Apply the permutation.
    let mut remap = HashMap::with_capacity(n);
    for (new_idx, &old_idx) in order.iter().enumerate() {
        remap.insert(BlockId::from_index(old_idx), BlockId::from_index(new_idx));
    }
    let mut old_blocks: Vec<Option<impact_il::Block>> = std::mem::take(&mut func.blocks)
        .into_iter()
        .map(Some)
        .collect();
    func.blocks = order
        .iter()
        .map(|&i| old_blocks[i].take().expect("each block moved once"))
        .collect();
    for b in &mut func.blocks {
        b.term.map_successors(|t| remap[&t]);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{FunctionBuilder, Inst, Reg};

    /// entry --(hot)--> b2, --(cold)--> b1; expect layout entry, b2, b1.
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("t", 1);
        let cold = fb.new_block(); // b1
        let hot = fb.new_block(); // b2
        let exit = fb.new_block(); // b3
        fb.terminate(Terminator::Branch {
            cond: Reg(0),
            then_to: cold,
            else_to: hot,
        });
        fb.switch_to(cold);
        fb.push(Inst::Const {
            dst: Reg(0),
            value: 1,
        });
        fb.terminate(Terminator::Jump(exit));
        fb.switch_to(hot);
        fb.push(Inst::Const {
            dst: Reg(0),
            value: 2,
        });
        fb.terminate(Terminator::Jump(exit));
        fb.switch_to(exit);
        fb.terminate(Terminator::Return(Some(Reg(0))));
        fb.finish()
    }

    #[test]
    fn hot_successor_is_placed_next() {
        let mut f = diamond();
        // entry executed 100x; branch taken (cold) 5x; hot 95x.
        let counts = [100u64, 5, 95, 100];
        let taken = [5u64, 0, 0, 0];
        let changed = reorder_blocks(&mut f, &counts, &taken);
        assert!(changed);
        // New order: entry(0), hot(old 2), exit(old 3), cold(old 1).
        // Check by looking at the hot block's payload.
        assert!(matches!(f.blocks[1].insts[0], Inst::Const { value: 2, .. }));
        // Entry still first, and the CFG still verifies structurally:
        // every successor in range.
        for b in &f.blocks {
            b.term
                .for_each_successor(|s| assert!(s.index() < f.blocks.len()));
        }
    }

    #[test]
    fn hot_chain_runs_through_to_the_exit() {
        let mut f = diamond();
        // The then-branch (b1) is the hot one: the chain becomes
        // entry → b1 → exit, with the cold b2 placed last.
        let counts = [100u64, 95, 5, 100];
        let taken = [95u64, 0, 0, 0];
        let changed = reorder_blocks(&mut f, &counts, &taken);
        assert!(changed);
        assert!(matches!(f.blocks[1].insts[0], Inst::Const { value: 1, .. }));
        assert!(matches!(f.blocks[2].term, Terminator::Return(_)));
        assert!(matches!(f.blocks[3].insts[0], Inst::Const { value: 2, .. }));
    }

    #[test]
    fn semantics_preserved_under_reordering() {
        use impact_cfront::{compile, Source};
        use impact_vm::{run, VmConfig};
        let module = compile(&[Source::new(
            "t.c",
            "int collatz(int n) {\n\
               int steps;\n\
               steps = 0;\n\
               while (n != 1) {\n\
                 if (n % 2) n = 3 * n + 1;\n\
                 else n = n / 2;\n\
                 steps++;\n\
               }\n\
               return steps;\n\
             }\n\
             int main() { int i; int s; s = 0; for (i = 1; i < 40; i++) s += collatz(i); return s & 0xff; }",
        )])
        .unwrap();
        let base = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
        let mut laid_out = module.clone();
        for (fi, f) in laid_out.functions.iter_mut().enumerate() {
            reorder_blocks(
                f,
                &base.profile.block_counts[fi],
                &base.profile.branch_taken[fi],
            );
        }
        impact_il::verify_module(&laid_out).unwrap();
        let after = run(&laid_out, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(base.exit_code, after.exit_code);
        assert_eq!(base.profile.il_executed, after.profile.il_executed);
    }

    #[test]
    fn tiny_functions_are_left_alone() {
        let mut f = FunctionBuilder::new("t", 0);
        f.terminate(Terminator::Return(None));
        let mut f = f.finish();
        assert!(!reorder_blocks(&mut f, &[1], &[0]));
    }
}
