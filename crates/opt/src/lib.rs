//! # impact-opt — classical IL optimizations
//!
//! The paper applies *constant folding and jump optimization* before the
//! inline expansion procedure (§4.4) and names copy propagation and dead
//! code elimination as the cleanups that remove parameter-buffering
//! overhead after expansion (§2.4). This crate implements those four
//! passes.
//!
//! All passes are intraprocedural and semantics-preserving; each returns
//! the number of changes it made so drivers can iterate to a fixpoint with
//! [`optimize_function`] / [`optimize_module`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use impact_il::{BinOp, BlockId, CmpOp, Function, Inst, Module, Reg, Terminator, UnOp, Width};
use impact_vm::FaultPlan;

mod cse;
mod fold;
mod jump;
mod layout;
mod peephole;

pub use cse::local_cse;
pub use fold::{constant_fold, copy_propagation};
pub use jump::jump_optimization;
pub use layout::reorder_blocks;
pub use peephole::strength_reduce;

/// Hard cap on optimizer fixpoint iterations (both the per-function pass
/// pipeline and pass-internal loops). Passes that keep reporting changes
/// past this many rounds are oscillating — e.g. two rewrites that undo
/// each other — and the loop must stop and report rather than spin.
pub const MAX_FIXPOINT_ROUNDS: usize = 8;

/// Removes instructions whose results are never used and that have no side
/// effects. Iterates to a fixpoint within the function (bounded by
/// [`MAX_FIXPOINT_ROUNDS`] so a buggy rewrite cannot spin forever).
///
/// Returns the number of instructions removed.
pub fn dead_code_elimination(func: &mut Function) -> usize {
    let mut removed_total = 0;
    for _ in 0..MAX_FIXPOINT_ROUNDS {
        let mut used = vec![false; func.num_regs as usize];
        for b in &func.blocks {
            for inst in &b.insts {
                inst.for_each_use(|r| used[r.index()] = true);
            }
            match &b.term {
                Terminator::Branch { cond, .. } => used[cond.index()] = true,
                Terminator::Return(Some(r)) => used[r.index()] = true,
                _ => {}
            }
        }
        let mut removed = 0;
        for b in &mut func.blocks {
            b.insts.retain(|inst| {
                if inst.has_side_effect() {
                    return true;
                }
                match inst.def() {
                    Some(d) if !used[d.index()] => {
                        removed += 1;
                        false
                    }
                    _ => true,
                }
            });
        }
        removed_total += removed;
        if removed == 0 {
            break;
        }
    }
    removed_total
}

/// Runs constant folding, local CSE, copy propagation, dead code
/// elimination, and jump optimization on one function until nothing
/// changes (bounded at [`MAX_FIXPOINT_ROUNDS`] as a safety valve; use
/// [`optimize_function_isolated`] to also *observe* non-convergence).
///
/// Returns the total number of changes.
pub fn optimize_function(func: &mut Function) -> usize {
    let mut total = 0;
    for _ in 0..MAX_FIXPOINT_ROUNDS {
        // Convergence is structural (the IR stopped changing), not count
        // based: some passes report work they re-derive every round even
        // at a stable point, and trusting their counts would spin the
        // loop to the cap on already-converged functions.
        let before = func.clone();
        let mut changed = 0;
        changed += constant_fold(func);
        changed += strength_reduce(func);
        changed += local_cse(func);
        changed += copy_propagation(func);
        changed += dead_code_elimination(func);
        changed += jump_optimization(func);
        total += changed;
        if changed == 0 || *func == before {
            break;
        }
    }
    total
}

/// Optimizes every function of a module. Returns the total change count.
pub fn optimize_module(module: &mut Module) -> usize {
    let mut total = 0;
    for f in &mut module.functions {
        total += optimize_function(f);
    }
    total
}

/// One optimization pass skipped by the isolation layer of
/// [`optimize_function_isolated`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkippedPass {
    /// The function the pass was skipped for.
    pub func: String,
    /// Name of the skipped pass.
    pub pass: &'static str,
    /// The panic message (or injected-fault note) that caused the skip.
    pub reason: String,
}

/// Diagnosis of an optimizer fixpoint loop that hit
/// [`MAX_FIXPOINT_ROUNDS`] while passes were still reporting changes —
/// a pass oscillation. The per-pass change counts of the final round
/// identify which rewrites are fighting each other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixpointDiagnostic {
    /// The function whose pipeline did not converge.
    pub func: String,
    /// Rounds executed before the cap stopped the loop.
    pub rounds: usize,
    /// `(pass name, changes it reported in the final round)`, for every
    /// pass that was still changing the function.
    pub last_round: Vec<(&'static str, usize)>,
}

impl std::fmt::Display for FixpointDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let passes = self
            .last_round
            .iter()
            .map(|(name, n)| format!("{name}={n}"))
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            f,
            "fixpoint not reached after {} rounds in `{}`; still changing: {passes}",
            self.rounds, self.func
        )
    }
}

/// The fixpoint pass pipeline of [`optimize_function`], named for the
/// isolation layer's incident reports.
type PassFn = fn(&mut Function) -> usize;

const PASSES: [(&str, PassFn); 6] = [
    ("constant-fold", constant_fold),
    ("strength-reduce", strength_reduce),
    ("local-cse", local_cse),
    ("copy-propagation", copy_propagation),
    ("dead-code-elimination", dead_code_elimination),
    ("jump-optimization", jump_optimization),
];

/// Telemetry span name per pass (static so a disabled handle costs no
/// allocation); index-aligned with [`PASSES`].
const SPAN_NAMES: [&str; 6] = [
    "opt:constant-fold",
    "opt:strength-reduce",
    "opt:local-cse",
    "opt:copy-propagation",
    "opt:dead-code-elimination",
    "opt:jump-optimization",
];

/// Like [`optimize_function`], but each pass runs isolated: it operates
/// on a scratch clone of the function inside `catch_unwind`, so a
/// panicking pass is discarded (the function keeps its pre-pass body)
/// and that pass is disabled for this function's remaining rounds
/// instead of taking the compilation down.
///
/// The `opt:pass` fault point deterministically forces the Nth pass
/// invocation to panic, and `opt:fixpoint` forces the Nth function's
/// pipeline to report non-convergence, exercising both recovery paths.
///
/// Returns the total change count, one [`SkippedPass`] per disabled
/// pass, and a [`FixpointDiagnostic`] when the round cap was reached
/// while passes were still reporting changes (an oscillation — the
/// function is left in its last, still-verified state rather than
/// looping forever).
pub fn optimize_function_isolated(
    func: &mut Function,
    fault: &FaultPlan,
) -> (usize, Vec<SkippedPass>, Option<FixpointDiagnostic>) {
    optimize_function_observed(func, fault, &impact_obs::Telemetry::disabled())
}

/// [`optimize_function_isolated`] with pipeline telemetry: each pass
/// invocation is recorded as an `opt:<pass>` span and its change count
/// accumulated into the `opt:changes` counter. With a disabled handle
/// this is exactly [`optimize_function_isolated`].
pub fn optimize_function_observed(
    func: &mut Function,
    fault: &FaultPlan,
    obs: &impact_obs::Telemetry,
) -> (usize, Vec<SkippedPass>, Option<FixpointDiagnostic>) {
    let mut total = 0;
    let mut skipped = Vec::new();
    let mut disabled = [false; PASSES.len()];
    // When `opt:fixpoint` fires for this function, the loop behaves as if
    // every round kept changing: it runs to the cap and reports.
    let force_oscillation = fault.should_fail("opt:fixpoint");
    let mut rounds = 0;
    let mut last_round: Vec<(&'static str, usize)> = Vec::new();
    let mut converged = false;
    for _ in 0..MAX_FIXPOINT_ROUNDS {
        rounds += 1;
        let before = func.clone();
        let mut changed = 0;
        last_round.clear();
        for (i, (name, pass)) in PASSES.iter().enumerate() {
            if disabled[i] {
                continue;
            }
            let _pass_span = obs.span(SPAN_NAMES[i]);
            let inject = fault.should_fail("opt:pass");
            let mut scratch = func.clone();
            // Silence the default panic hook while the pass runs: the
            // unwind is caught and surfaced as a SkippedPass, so the
            // backtrace spew would misread as a crash.
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject {
                    panic!("fault injection forced an optimizer pass panic");
                }
                pass(&mut scratch)
            }));
            std::panic::set_hook(prev_hook);
            match outcome {
                Ok(n) => {
                    *func = scratch;
                    changed += n;
                    if n > 0 || (force_oscillation && rounds == MAX_FIXPOINT_ROUNDS) {
                        last_round.push((name, n));
                    }
                }
                Err(payload) => {
                    disabled[i] = true;
                    skipped.push(SkippedPass {
                        func: func.name.clone(),
                        pass: name,
                        reason: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        total += changed;
        // Structural convergence check, as in [`optimize_function`]:
        // pass change counts over-report at stable points, so the loop
        // compares the IR itself round over round.
        if (changed == 0 || *func == before) && !force_oscillation {
            converged = true;
            break;
        }
    }
    let fixpoint = if converged {
        None
    } else {
        Some(FixpointDiagnostic {
            func: func.name.clone(),
            rounds,
            last_round: last_round.clone(),
        })
    };
    if obs.is_enabled() {
        obs.count("opt:changes", total as u64);
        obs.count("opt:functions", 1);
    }
    (total, skipped, fixpoint)
}

/// Like [`optimize_module`], but with per-pass isolation and fixpoint
/// oscillation detection (see [`optimize_function_isolated`]).
pub fn optimize_module_isolated(
    module: &mut Module,
    fault: &FaultPlan,
) -> (usize, Vec<SkippedPass>, Vec<FixpointDiagnostic>) {
    optimize_module_observed(module, fault, &impact_obs::Telemetry::disabled())
}

/// [`optimize_module_isolated`] with pipeline telemetry (see
/// [`optimize_function_observed`]).
pub fn optimize_module_observed(
    module: &mut Module,
    fault: &FaultPlan,
    obs: &impact_obs::Telemetry,
) -> (usize, Vec<SkippedPass>, Vec<FixpointDiagnostic>) {
    let mut total = 0;
    let mut skipped = Vec::new();
    let mut fixpoints = Vec::new();
    for f in &mut module.functions {
        let (n, s, fx) = optimize_function_observed(f, fault, obs);
        total += n;
        skipped.extend(s);
        fixpoints.extend(fx);
    }
    (total, skipped, fixpoints)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "pass panicked with a non-string payload".to_string()
    }
}

/// Shared helper: evaluate a binary op over two constants, mirroring VM
/// semantics exactly. Returns `None` for division by zero (folding must
/// not hide a trap).
pub(crate) fn eval_bin_const(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::UDiv => {
            if b == 0 {
                return None;
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::URem => {
            if b == 0 {
                return None;
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
    })
}

pub(crate) fn eval_cmp_const(op: CmpOp, a: i64, b: i64) -> i64 {
    let r = match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::SLt => a < b,
        CmpOp::SLe => a <= b,
        CmpOp::SGt => a > b,
        CmpOp::SGe => a >= b,
        CmpOp::ULt => (a as u64) < (b as u64),
        CmpOp::ULe => (a as u64) <= (b as u64),
        CmpOp::UGt => (a as u64) > (b as u64),
        CmpOp::UGe => (a as u64) >= (b as u64),
    };
    r as i64
}

pub(crate) fn eval_un_const(op: UnOp, v: i64) -> i64 {
    match op {
        UnOp::Neg => v.wrapping_neg(),
        UnOp::BitNot => !v,
        UnOp::LogNot => (v == 0) as i64,
    }
}

pub(crate) fn eval_ext_const(v: i64, width: Width, signed: bool) -> i64 {
    match (width, signed) {
        (Width::W1, true) => v as i8 as i64,
        (Width::W1, false) => v as u8 as i64,
        (Width::W2, true) => v as i16 as i64,
        (Width::W2, false) => v as u16 as i64,
        (Width::W4, true) => v as i32 as i64,
        (Width::W4, false) => v as u32 as i64,
        (Width::W8, _) => v,
    }
}

/// Replaces every use of registers per `map` in one instruction.
pub(crate) fn rewrite_uses(inst: &mut Inst, map: &HashMap<Reg, Reg>) {
    let get = |r: &mut Reg| {
        if let Some(&n) = map.get(r) {
            *r = n;
        }
    };
    match inst {
        Inst::Const { .. }
        | Inst::AddrOfGlobal { .. }
        | Inst::AddrOfSlot { .. }
        | Inst::AddrOfFunc { .. } => {}
        Inst::Mov { src, .. } | Inst::Un { src, .. } | Inst::Ext { src, .. } => get(src),
        Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
            get(lhs);
            get(rhs);
        }
        Inst::Load { addr, .. } => get(addr),
        Inst::Store { addr, src, .. } => {
            get(addr);
            get(src);
        }
        Inst::Call { callee, args, .. } => {
            if let impact_il::Callee::Reg(r) = callee {
                get(r);
            }
            for a in args {
                get(a);
            }
        }
    }
}

/// Builds predecessor lists for a function's CFG.
pub(crate) fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (bi, b) in func.blocks.iter().enumerate() {
        b.term.for_each_successor(|s| {
            preds[s.index()].push(BlockId::from_index(bi));
        });
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, VmConfig};

    /// Compiles, optimizes, runs, and checks the observable result is
    /// unchanged.
    fn check_preserves(src: &str) -> (i64, usize) {
        let module = compile(&[Source::new("t.c", src)]).expect("compiles");
        let baseline = run(&module, vec![], vec![], &VmConfig::default())
            .expect("runs")
            .exit_code;
        let mut optimized = module.clone();
        let changes = optimize_module(&mut optimized);
        impact_il::verify_module(&optimized).expect("still verifies");
        let after = run(&optimized, vec![], vec![], &VmConfig::default())
            .expect("still runs")
            .exit_code;
        assert_eq!(baseline, after, "optimization changed behaviour");
        (after, changes)
    }

    #[test]
    fn folding_shrinks_constant_expressions() {
        let module =
            compile(&[Source::new("t.c", "int main() { return (2 + 3) * 4 - 6; }")]).unwrap();
        let mut m = module.clone();
        optimize_module(&mut m);
        assert!(m.total_size() < module.total_size());
        let out = run(&m, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(out.exit_code, 14);
    }

    #[test]
    fn optimization_preserves_various_programs() {
        check_preserves(
            "int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) s += i * i; return s; }",
        );
        check_preserves(
            "int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }\n\
             int main() { return fib(10); }",
        );
        check_preserves(
            "int main() { int a[5]; int i; for (i = 0; i < 5; i++) a[i] = i; return a[3]; }",
        );
        check_preserves(
            "unsigned h(unsigned x) { return (x ^ 61) ^ (x >> 16); }\n\
             int main() { return h(12345) & 0xff; }",
        );
    }

    #[test]
    fn dce_removes_unused_computation() {
        let module = compile(&[Source::new(
            "t.c",
            "int main() { int x; x = 5 * 5; return 1; }",
        )])
        .unwrap();
        let mut m = module.clone();
        optimize_module(&mut m);
        assert!(m.total_size() < module.total_size());
    }

    #[test]
    fn dce_keeps_side_effects() {
        let module = compile(&[Source::new(
            "t.c",
            "int g;\n\
             int bump() { g++; return g; }\n\
             int main() { bump(); return g; }",
        )])
        .unwrap();
        let mut m = module.clone();
        optimize_module(&mut m);
        let out = run(&m, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(out.exit_code, 1);
    }

    #[test]
    fn constant_branch_becomes_jump() {
        let module = compile(&[Source::new(
            "t.c",
            "int main() { if (1) return 7; return 8; }",
        )])
        .unwrap();
        let mut m = module.clone();
        optimize_module(&mut m);
        // After folding + jump optimization, no Branch remains in main.
        let main = m.function(m.main_id().unwrap());
        let has_branch = main
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. }));
        assert!(!has_branch);
        let out = run(&m, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(out.exit_code, 7);
    }

    #[test]
    fn division_by_zero_is_not_folded_away() {
        let module = compile(&[Source::new(
            "t.c",
            "int main() { int z; z = 0; return 1 / z; }",
        )])
        .unwrap();
        let mut m = module.clone();
        optimize_module(&mut m);
        // Still traps at runtime.
        assert!(run(&m, vec![], vec![], &VmConfig::default()).is_err());
    }

    #[test]
    fn optimize_reports_zero_changes_at_fixpoint() {
        let module = compile(&[Source::new("t.c", "int main() { return 3; }")]).unwrap();
        let mut m = module.clone();
        optimize_module(&mut m);
        let second = optimize_module(&mut m);
        assert_eq!(second, 0);
    }

    #[test]
    fn isolated_matches_plain_optimization_without_faults() {
        let src = "int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }\n\
             int main() { return fib(10) + (2 + 3) * 4; }";
        let module = compile(&[Source::new("t.c", src)]).unwrap();
        let mut plain = module.clone();
        let mut isolated = module.clone();
        let n_plain = optimize_module(&mut plain);
        let (n_iso, skipped, fixpoints) =
            optimize_module_isolated(&mut isolated, &FaultPlan::new());
        assert!(skipped.is_empty());
        assert!(fixpoints.is_empty(), "healthy pipelines converge");
        assert_eq!(n_plain, n_iso);
        assert_eq!(
            impact_il::module_to_string(&plain),
            impact_il::module_to_string(&isolated)
        );
    }

    #[test]
    fn injected_pass_panic_is_contained_and_reported() {
        let src = "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 5; i++) s += sq(i); return s; }";
        let module = compile(&[Source::new("t.c", src)]).unwrap();
        let baseline = run(&module, vec![], vec![], &VmConfig::default())
            .unwrap()
            .exit_code;

        let fault = FaultPlan::new();
        fault.arm("opt:pass", 1);
        let mut m = module.clone();
        let (_, skipped, _) = optimize_module_isolated(&mut m, &fault);
        assert_eq!(skipped.len(), 1, "exactly one pass invocation panicked");
        assert_eq!(skipped[0].pass, "constant-fold");
        assert!(skipped[0].reason.contains("fault injection"));

        // The module survived the panic, still verifies, and behaves the
        // same: the panicking pass's scratch clone was discarded.
        impact_il::verify_module(&m).expect("still verifies");
        let after = run(&m, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(after.exit_code, baseline);
    }

    #[test]
    fn forced_fixpoint_oscillation_is_capped_and_diagnosed() {
        let src = "int sq(int x) { return x * x; }\n\
             int main() { int i; int s; s = 0; for (i = 0; i < 5; i++) s += sq(i); return s; }";
        let module = compile(&[Source::new("t.c", src)]).unwrap();
        let baseline = run(&module, vec![], vec![], &VmConfig::default())
            .unwrap()
            .exit_code;

        let fault = FaultPlan::new();
        fault.arm("opt:fixpoint", 1);
        let mut m = module.clone();
        let (_, skipped, fixpoints) = optimize_module_isolated(&mut m, &fault);
        assert!(skipped.is_empty());
        assert_eq!(fixpoints.len(), 1, "exactly one function 'oscillated'");
        let fx = &fixpoints[0];
        assert_eq!(fx.rounds, MAX_FIXPOINT_ROUNDS, "loop ran to the cap");
        assert!(
            !fx.last_round.is_empty(),
            "per-pass change counts are reported"
        );
        let rendered = fx.to_string();
        assert!(rendered.contains("fixpoint not reached"), "{rendered}");
        assert!(rendered.contains("constant-fold"), "{rendered}");

        // Capping instead of looping leaves a valid, equivalent module.
        impact_il::verify_module(&m).expect("still verifies");
        let after = run(&m, vec![], vec![], &VmConfig::default()).unwrap();
        assert_eq!(after.exit_code, baseline);
    }

    #[test]
    fn dce_fixpoint_is_bounded() {
        // A function with a long chain of dead copies needs several DCE
        // rounds; the bounded loop must still remove them all.
        let mut src = String::from("int main() { int a; int b; int c; a = 1; b = a; c = b;");
        src.push_str(" return 0; }");
        let module = compile(&[Source::new("t.c", &src)]).unwrap();
        let mut m = module.clone();
        let main = m.main_id().unwrap();
        let removed = dead_code_elimination(m.function_mut(main));
        assert!(removed > 0);
        let again = dead_code_elimination(m.function_mut(main));
        assert_eq!(again, 0, "bounded DCE still reaches its fixpoint");
    }
}
