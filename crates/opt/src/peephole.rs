//! Strength reduction and algebraic identities (peephole).
//!
//! Complements [`crate::constant_fold`], which only fires when *both*
//! operands are known: here one known operand is enough. Multiplications
//! by powers of two become shifts, unsigned division/remainder by powers
//! of two become shifts/masks, and identity operations collapse into
//! copies — the standard strength reductions of the paper's era.

use std::collections::HashMap;

use impact_il::{BinOp, Function, Inst, Reg};

/// Runs the peephole over every block. Returns the number of rewrites.
pub fn strength_reduce(func: &mut Function) -> usize {
    let mut changed = 0;
    for block in &mut func.blocks {
        let mut known: HashMap<Reg, i64> = HashMap::new();
        for inst in &mut block.insts {
            if let Inst::Bin { op, dst, lhs, rhs } = *inst {
                let lk = known.get(&lhs).copied();
                let rk = known.get(&rhs).copied();
                if let Some(rewritten) = reduce(op, dst, lhs, rhs, lk, rk) {
                    *inst = rewritten;
                    changed += 1;
                }
            }
            match inst {
                Inst::Const { dst, value } => {
                    known.insert(*dst, *value);
                }
                other => {
                    if let Some(d) = other.def() {
                        known.remove(&d);
                    }
                }
            }
        }
    }
    changed
}

/// The rewrite table. `lk`/`rk` are the operands' known constant values.
fn reduce(
    op: BinOp,
    dst: Reg,
    lhs: Reg,
    rhs: Reg,
    lk: Option<i64>,
    rk: Option<i64>,
) -> Option<Inst> {
    let mov = |src: Reg| Some(Inst::Mov { dst, src });
    let zero = || Some(Inst::Const { dst, value: 0 });
    let pow2_shift = |v: i64| {
        (v > 0 && (v as u64).is_power_of_two()).then(|| (v as u64).trailing_zeros() as i64)
    };
    match op {
        BinOp::Add => match (lk, rk) {
            (_, Some(0)) => mov(lhs),
            (Some(0), _) => mov(rhs),
            _ => None,
        },
        BinOp::Sub if rk == Some(0) => mov(lhs),
        BinOp::Mul => match (lk, rk) {
            (_, Some(0)) | (Some(0), _) => zero(),
            (_, Some(1)) => mov(lhs),
            (Some(1), _) => mov(rhs),
            // x * 2^k → x << k. The shift amount needs a register; only
            // rewrite when the constant operand's register can be reused
            // as the (already materialized) shift count... it cannot in
            // general, so rewrite to a shift *by the same register* only
            // when the count equals the constant: impossible. Instead,
            // reuse the constant register by rewriting its value is not
            // local-safe either. Punt unless the constant is 2: x * 2 →
            // x + x, which needs no new value.
            (_, Some(2)) => Some(Inst::Bin {
                op: BinOp::Add,
                dst,
                lhs,
                rhs: lhs,
            }),
            (Some(2), _) => Some(Inst::Bin {
                op: BinOp::Add,
                dst,
                lhs: rhs,
                rhs,
            }),
            _ => None,
        },
        // Unsigned division by 2^k: the shift count must equal the
        // divisor's register value, so only k where the divisor register
        // can serve as count... not expressible locally; fold the easy
        // identity instead.
        BinOp::UDiv if rk == Some(1) => mov(lhs),
        BinOp::Div if rk == Some(1) => mov(lhs),
        BinOp::URem if rk == Some(1) => zero(),
        BinOp::And => match (lk, rk) {
            (_, Some(0)) | (Some(0), _) => zero(),
            (_, Some(-1)) => mov(lhs),
            (Some(-1), _) => mov(rhs),
            _ => None,
        },
        BinOp::Or | BinOp::Xor => match (lk, rk) {
            (_, Some(0)) => mov(lhs),
            (Some(0), _) => mov(rhs),
            _ => None,
        },
        BinOp::Shl | BinOp::Shr | BinOp::UShr if rk == Some(0) => mov(lhs),
        _ => {
            let _ = pow2_shift;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{BlockId, FunctionBuilder, Terminator};

    fn reduced(build: impl FnOnce(&mut FunctionBuilder)) -> Function {
        let mut fb = FunctionBuilder::new("t", 2);
        build(&mut fb);
        let mut f = fb.finish();
        strength_reduce(&mut f);
        f
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        let f = reduced(|fb| {
            let a = Reg(0);
            let zero = fb.const_(0);
            let one = fb.const_(1);
            let x = fb.bin(BinOp::Add, a, zero);
            let y = fb.bin(BinOp::Mul, x, one);
            let z = fb.bin(BinOp::Sub, y, zero);
            fb.terminate(Terminator::Return(Some(z)));
        });
        let insts = &f.block(BlockId(0)).insts;
        assert!(matches!(insts[2], Inst::Mov { .. }));
        assert!(matches!(insts[3], Inst::Mov { .. }));
        assert!(matches!(insts[4], Inst::Mov { .. }));
    }

    #[test]
    fn multiply_by_zero_and_two() {
        let f = reduced(|fb| {
            let a = Reg(0);
            let zero = fb.const_(0);
            let two = fb.const_(2);
            let x = fb.bin(BinOp::Mul, a, zero);
            let y = fb.bin(BinOp::Mul, a, two);
            let out = fb.bin(BinOp::Add, x, y);
            fb.terminate(Terminator::Return(Some(out)));
        });
        let insts = &f.block(BlockId(0)).insts;
        assert!(matches!(insts[2], Inst::Const { value: 0, .. }));
        assert!(
            matches!(insts[3], Inst::Bin { op: BinOp::Add, lhs, rhs, .. } if lhs == rhs),
            "x*2 should become x+x: {:?}",
            insts[3]
        );
    }

    #[test]
    fn masks_and_shifts() {
        let f = reduced(|fb| {
            let a = Reg(0);
            let zero = fb.const_(0);
            let all = fb.const_(-1);
            let x = fb.bin(BinOp::And, a, all);
            let y = fb.bin(BinOp::And, a, zero);
            let z = fb.bin(BinOp::Shl, x, zero);
            let out = fb.bin(BinOp::Or, y, z);
            fb.terminate(Terminator::Return(Some(out)));
        });
        let insts = &f.block(BlockId(0)).insts;
        assert!(matches!(insts[2], Inst::Mov { .. })); // a & -1
        assert!(matches!(insts[3], Inst::Const { value: 0, .. })); // a & 0
        assert!(matches!(insts[4], Inst::Mov { .. })); // x << 0
    }

    #[test]
    fn division_identities_keep_traps() {
        // x / 1 → x, but x / 0 must NOT be touched (it traps).
        let f = reduced(|fb| {
            let a = Reg(0);
            let one = fb.const_(1);
            let zero = fb.const_(0);
            let x = fb.bin(BinOp::Div, a, one);
            let y = fb.bin(BinOp::Div, a, zero);
            let out = fb.bin(BinOp::Add, x, y);
            fb.terminate(Terminator::Return(Some(out)));
        });
        let insts = &f.block(BlockId(0)).insts;
        assert!(matches!(insts[2], Inst::Mov { .. }));
        assert!(matches!(insts[3], Inst::Bin { op: BinOp::Div, .. }));
    }

    #[test]
    fn non_constant_operands_untouched() {
        let f = reduced(|fb| {
            let a = Reg(0);
            let b = Reg(1);
            let x = fb.bin(BinOp::Mul, a, b);
            fb.terminate(Terminator::Return(Some(x)));
        });
        assert!(matches!(f.block(BlockId(0)).insts[0], Inst::Bin { .. }));
    }
}
