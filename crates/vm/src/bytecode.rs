//! Lowering IL into the flat register bytecode (DESIGN.md §12).
//!
//! The tree-walking interpreter pays for the IL's nested structure on
//! every step: a frame lookup, a function lookup, a block lookup, and a
//! bounds-checked instruction fetch. This module flattens a
//! [`Module`] once per run into a single [`Vec<Op>`] — functions laid
//! out back to back, blocks erased, every jump and call destination
//! pre-resolved to an absolute code index — so the dispatch loop in
//! [`crate::exec`] touches exactly one array per step.
//!
//! Lowering also performs **superinstruction fusion** for the hottest
//! adjacent pairs ("dyads") in profiled runs: compare-and-branch (every
//! loop back edge), take-slot-address-and-load / -store (every access
//! to a memory-resident local in cfront-style code), and
//! load-immediate-into-binop. Fused ops execute both halves in one
//! dispatch but still count two IL instructions, check the step limit
//! between the halves, and issue both simulated icache fetches, so
//! profiles and traps stay bit-identical to the interpreter's.

use impact_il::{BinOp, Callee, CmpOp, Inst, Module, Terminator, UnOp, Width};

use crate::memory::Memory;

/// Register sentinel meaning "no destination register".
pub(crate) const NO_REG: u32 = u32::MAX;

/// One pre-decoded bytecode operation.
///
/// Register operands are frame-relative indices (`u32`, not
/// [`impact_il::Reg`], so the executor never converts). Jump fields
/// (`to`, `then_to`, `else_to`) are absolute indices into
/// [`Program::ops`]; `flat`/`here` fields are flat block-counter
/// indices (`BcFunc::block_base + block`) for the dense profiling
/// arrays.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// `dst = value`. Also lowered from `AddrOfGlobal` (the global's
    /// address is resolved at lowering time) and `AddrOfFunc` (the
    /// encoded function pointer is a constant).
    Const { dst: u32, value: i64 },
    /// `dst = src`.
    Mov { dst: u32, src: u32 },
    /// `dst = op src`.
    Un { op: UnOp, dst: u32, src: u32 },
    /// `dst = lhs op rhs`.
    Bin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// `dst = (lhs op rhs) as 0/1`.
    Cmp {
        op: CmpOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// `dst = sp + off` — address of a stack slot (offset pre-resolved).
    AddrOfSlot { dst: u32, off: u64 },
    /// `dst = extend(truncate(src))`.
    Ext {
        dst: u32,
        src: u32,
        width: Width,
        signed: bool,
    },
    /// `dst = *(width*)regs[addr]`.
    Load {
        dst: u32,
        addr: u32,
        width: Width,
        signed: bool,
    },
    /// `*(width*)regs[addr] = regs[src]`.
    Store { addr: u32, src: u32, width: Width },
    /// Direct call to a user function (`dst == NO_REG` for none).
    CallFunc {
        func: u32,
        site: u32,
        args: Box<[u32]>,
        dst: u32,
    },
    /// Call to an external builtin.
    CallExt {
        ext: u32,
        site: u32,
        args: Box<[u32]>,
        dst: u32,
    },
    /// Indirect call through a function pointer in a register.
    CallReg {
        reg: u32,
        site: u32,
        args: Box<[u32]>,
        dst: u32,
    },
    /// Unconditional jump to absolute index `to` (entering flat block
    /// `flat`).
    Jump { to: u32, flat: u32 },
    /// Conditional branch; `here` is the flat index of the block this
    /// terminator belongs to (for taken-direction counting).
    Branch {
        cond: u32,
        then_to: u32,
        else_to: u32,
        then_flat: u32,
        else_flat: u32,
        here: u32,
    },
    /// Return (`src == NO_REG` returns 0).
    Return { src: u32 },
    /// Stop the program with exit code 0.
    Halt,
    /// Superinstruction: `Cmp` whose result feeds the block's own
    /// `Branch` terminator. Still writes `dst` (a later block may read
    /// the flag register).
    CmpBranch {
        op: CmpOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
        then_to: u32,
        else_to: u32,
        then_flat: u32,
        else_flat: u32,
        here: u32,
    },
    /// Superinstruction: `Const tmp, imm` + `Bin dst, lhs, tmp`. The
    /// immediate is still materialized into `tmp` first, so register
    /// state (and an `lhs == tmp` read) matches the unfused pair.
    ConstBin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        imm: i64,
        tmp: u32,
    },
    /// Superinstruction: `AddrOfSlot tmp` + `Load dst, [tmp]`.
    SlotLoad {
        dst: u32,
        off: u64,
        tmp: u32,
        width: Width,
        signed: bool,
    },
    /// Superinstruction: `AddrOfSlot tmp` + `Store [tmp], src`.
    SlotStore {
        off: u64,
        src: u32,
        tmp: u32,
        width: Width,
    },
    /// Superinstruction: `Mov dst, src` + the block's own `Jump`
    /// (cfront-style code copies a value out right before every back
    /// edge and join).
    MovJump {
        dst: u32,
        src: u32,
        to: u32,
        flat: u32,
    },
    /// Superinstruction: `Const tmp, imm` + `Cmp dst, lhs, tmp` — in
    /// this IL dialect nearly every comparison is against an immediate.
    ConstCmp {
        op: CmpOp,
        dst: u32,
        lhs: u32,
        imm: i64,
        tmp: u32,
    },
    /// Superinstruction: `Const tmp, addr` + `Load dst, [tmp]` — a load
    /// from an absolute address, i.e. every global-variable read
    /// (`AddrOfGlobal` lowers to `Const`).
    ConstLoad {
        dst: u32,
        value: i64,
        tmp: u32,
        width: Width,
        signed: bool,
    },
    /// Three-slot superinstruction: `Const tmp, imm` + `Cmp dst, lhs,
    /// tmp` + the block's own `Branch` on `dst` — the canonical loop
    /// exit test. Counts three IL slots with a step-limit check and an
    /// icache fetch per slot.
    ConstCmpBranch {
        op: CmpOp,
        dst: u32,
        lhs: u32,
        imm: i64,
        tmp: u32,
        then_to: u32,
        else_to: u32,
        then_flat: u32,
        else_flat: u32,
        here: u32,
    },
    /// Three-slot superinstruction: two consecutive const-producing
    /// instructions feeding a `Bin` through its rhs. Both immediates
    /// are still materialized, in order, so any alias between `tmp1`,
    /// `tmp2`, and `lhs` reads exactly what the unfused sequence would.
    ConstConstBin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        imm1: i64,
        tmp1: u32,
        imm2: i64,
        tmp2: u32,
    },
    /// Superinstruction: `Bin tmp, lhs, rhs` + `Load dst, [tmp]` — the
    /// address arithmetic of every array subscript.
    BinLoad {
        op: BinOp,
        tmp: u32,
        lhs: u32,
        rhs: u32,
        dst: u32,
        width: Width,
        signed: bool,
    },
    /// Superinstruction: `Mov dst, src` + `Store [addr], dst`.
    MovStore {
        dst: u32,
        src: u32,
        addr: u32,
        width: Width,
    },
    /// Three-slot superinstruction: `AddrOfSlot tmp` + `Load dst,
    /// [tmp]` + the block's own `Branch` on `dst` — `if (local)`.
    SlotLoadBranch {
        dst: u32,
        off: u64,
        tmp: u32,
        width: Width,
        signed: bool,
        then_to: u32,
        else_to: u32,
        then_flat: u32,
        else_flat: u32,
        here: u32,
    },
    /// Three-slot superinstruction: `Const tmp, addr` + `Load dst,
    /// [tmp]` + the block's own `Branch` on `dst` — `if (global)`.
    ConstLoadBranch {
        dst: u32,
        value: i64,
        tmp: u32,
        width: Width,
        signed: bool,
        then_to: u32,
        else_to: u32,
        then_flat: u32,
        else_flat: u32,
        here: u32,
    },
}

/// Per-function metadata the executor needs to enter a frame.
#[derive(Clone, Debug)]
pub(crate) struct BcFunc {
    /// Absolute index of the entry block's first op.
    pub entry: u32,
    /// Frame size in bytes, already rounded like the interpreter does.
    pub frame_size: u64,
    /// Virtual register count (frame width in the register file).
    pub num_regs: u32,
    /// Flat block-counter index of this function's block 0.
    pub block_base: u32,
}

/// A whole module lowered to bytecode.
pub(crate) struct Program {
    /// The flat code array, all functions back to back.
    pub ops: Vec<Op>,
    /// Synthetic code address of each op's first IL slot, matching the
    /// interpreter's icache layout exactly (4 bytes per IL slot,
    /// functions back to back in `FuncId` order, one slot per
    /// terminator). A fused op's second half lives at `addrs[pc] + 4`.
    pub addrs: Vec<u64>,
    /// Per-function metadata, indexed by `FuncId`.
    pub funcs: Vec<BcFunc>,
    /// Total flat block count (size of the dense per-block counters).
    pub total_blocks: u32,
}

/// Treats const-producing instructions uniformly for fusion: `Const`,
/// `AddrOfGlobal` (address known at lowering time), `AddrOfFunc`.
fn const_value(inst: &Inst, mem: &Memory) -> Option<(u32, i64)> {
    match inst {
        Inst::Const { dst, value } => Some((dst.0, *value)),
        Inst::AddrOfGlobal { dst, global } => Some((dst.0, mem.global_addr(*global) as i64)),
        Inst::AddrOfFunc { dst, func } => Some((dst.0, Memory::encode_func_ptr(*func))),
        _ => None,
    }
}

/// Lowers `module` into a flat [`Program`].
///
/// Global addresses are resolved against `mem`, which must be the
/// memory the program will run in.
pub(crate) fn lower(module: &Module, mem: &Memory) -> Program {
    let mut ops: Vec<Op> = Vec::new();
    let mut addrs: Vec<u64> = Vec::new();
    let mut funcs: Vec<BcFunc> = Vec::with_capacity(module.functions.len());
    let mut block_base = 0u32;
    // Same synthetic layout as the interpreter: one 4-byte slot per IL
    // instruction or terminator, functions back to back.
    let mut code_cursor = 0u64;

    for f in &module.functions {
        let entry = ops.len() as u32;
        let nblocks = f.blocks.len();
        let slot_offsets = f.slot_offsets();
        // Absolute op index of each block, filled in as blocks are
        // emitted; jumps forward are patched afterwards.
        let mut block_pc = vec![u32::MAX; nblocks];
        // Op indices whose block-id jump targets need patching.
        let mut fixups: Vec<usize> = Vec::new();
        let flat = |b: u32| block_base + b;

        for (bi, block) in f.blocks.iter().enumerate() {
            block_pc[bi] = ops.len() as u32;
            let mut slot_addr = code_cursor;
            let mut i = 0;
            let n = block.insts.len();
            let mut term_fused = false;
            while i < n {
                let inst = &block.insts[i];
                let next = block.insts.get(i + 1);
                // Three-slot fusion across the terminator boundary:
                // const + compare + branch, or take-address + load +
                // branch-on-the-loaded-value.
                if i + 2 == n {
                    if let Terminator::Branch {
                        cond,
                        then_to,
                        else_to,
                    } = &block.term
                    {
                        let tails = (
                            then_to.0,
                            else_to.0,
                            flat(then_to.0),
                            flat(else_to.0),
                            flat(bi as u32),
                        );
                        let triple: Option<Op> = match next {
                            Some(Inst::Cmp { op, dst, lhs, rhs }) if cond == dst => {
                                const_value(inst, mem).and_then(|(t, imm)| {
                                    (rhs.0 == t).then_some(Op::ConstCmpBranch {
                                        op: *op,
                                        dst: dst.0,
                                        lhs: lhs.0,
                                        imm,
                                        tmp: t,
                                        then_to: tails.0,
                                        else_to: tails.1,
                                        then_flat: tails.2,
                                        else_flat: tails.3,
                                        here: tails.4,
                                    })
                                })
                            }
                            Some(Inst::Load {
                                dst,
                                addr,
                                width,
                                signed,
                            }) if cond == dst => match inst {
                                Inst::AddrOfSlot { dst: t, slot } if addr == t => {
                                    Some(Op::SlotLoadBranch {
                                        dst: dst.0,
                                        off: slot_offsets[slot.index()],
                                        tmp: t.0,
                                        width: *width,
                                        signed: *signed,
                                        then_to: tails.0,
                                        else_to: tails.1,
                                        then_flat: tails.2,
                                        else_flat: tails.3,
                                        here: tails.4,
                                    })
                                }
                                inst => const_value(inst, mem).and_then(|(t, value)| {
                                    (addr.0 == t).then_some(Op::ConstLoadBranch {
                                        dst: dst.0,
                                        value,
                                        tmp: t,
                                        width: *width,
                                        signed: *signed,
                                        then_to: tails.0,
                                        else_to: tails.1,
                                        then_flat: tails.2,
                                        else_flat: tails.3,
                                        here: tails.4,
                                    })
                                }),
                            },
                            _ => None,
                        };
                        if let Some(op) = triple {
                            fixups.push(ops.len());
                            ops.push(op);
                            addrs.push(slot_addr);
                            slot_addr += 12;
                            i += 2;
                            term_fused = true;
                            continue;
                        }
                    }
                }
                // Three-slot fusion inside the block: two consts
                // feeding a Bin through its rhs.
                if let (Some((t1, imm1)), Some(n1), Some(Inst::Bin { op, dst, lhs, rhs })) =
                    (const_value(inst, mem), next, block.insts.get(i + 2))
                {
                    if let Some((t2, imm2)) = const_value(n1, mem) {
                        if rhs.0 == t2 {
                            ops.push(Op::ConstConstBin {
                                op: *op,
                                dst: dst.0,
                                lhs: lhs.0,
                                imm1,
                                tmp1: t1,
                                imm2,
                                tmp2: t2,
                            });
                            addrs.push(slot_addr);
                            slot_addr += 12;
                            i += 3;
                            continue;
                        }
                    }
                }
                // Fusion candidates, most specific first. Every fused
                // op consumes two IL slots.
                let fused: Option<Op> = match (inst, next) {
                    (
                        Inst::AddrOfSlot { dst: t, slot },
                        Some(Inst::Load {
                            dst,
                            addr,
                            width,
                            signed,
                        }),
                    ) if addr == t => Some(Op::SlotLoad {
                        dst: dst.0,
                        off: slot_offsets[slot.index()],
                        tmp: t.0,
                        width: *width,
                        signed: *signed,
                    }),
                    (Inst::AddrOfSlot { dst: t, slot }, Some(Inst::Store { addr, src, width }))
                        if addr == t =>
                    {
                        Some(Op::SlotStore {
                            off: slot_offsets[slot.index()],
                            src: src.0,
                            tmp: t.0,
                            width: *width,
                        })
                    }
                    (inst, Some(Inst::Bin { op, dst, lhs, rhs })) => const_value(inst, mem)
                        .and_then(|(t, imm)| {
                            (rhs.0 == t).then_some(Op::ConstBin {
                                op: *op,
                                dst: dst.0,
                                lhs: lhs.0,
                                imm,
                                tmp: t,
                            })
                        }),
                    (inst, Some(Inst::Cmp { op, dst, lhs, rhs })) => const_value(inst, mem)
                        .and_then(|(t, imm)| {
                            (rhs.0 == t).then_some(Op::ConstCmp {
                                op: *op,
                                dst: dst.0,
                                lhs: lhs.0,
                                imm,
                                tmp: t,
                            })
                        }),
                    (
                        Inst::Bin {
                            op,
                            dst: t,
                            lhs,
                            rhs,
                        },
                        Some(Inst::Load {
                            dst,
                            addr,
                            width,
                            signed,
                        }),
                    ) if addr == t => Some(Op::BinLoad {
                        op: *op,
                        tmp: t.0,
                        lhs: lhs.0,
                        rhs: rhs.0,
                        dst: dst.0,
                        width: *width,
                        signed: *signed,
                    }),
                    (inst, Some(Inst::Store { addr, src, width })) => match inst {
                        Inst::Mov { dst, src: msrc } if src == dst => Some(Op::MovStore {
                            dst: dst.0,
                            src: msrc.0,
                            addr: addr.0,
                            width: *width,
                        }),
                        _ => None,
                    },
                    (
                        inst,
                        Some(Inst::Load {
                            dst,
                            addr,
                            width,
                            signed,
                        }),
                    ) => const_value(inst, mem).and_then(|(t, value)| {
                        (addr.0 == t).then_some(Op::ConstLoad {
                            dst: dst.0,
                            value,
                            tmp: t,
                            width: *width,
                            signed: *signed,
                        })
                    }),
                    _ => None,
                };
                if let Some(op) = fused {
                    ops.push(op);
                    addrs.push(slot_addr);
                    slot_addr += 8;
                    i += 2;
                    continue;
                }
                // A final Mov or Cmp fuses across the
                // instruction/terminator boundary.
                if i + 1 == n {
                    if let (Inst::Mov { dst, src }, Terminator::Jump(b)) = (inst, &block.term) {
                        fixups.push(ops.len());
                        ops.push(Op::MovJump {
                            dst: dst.0,
                            src: src.0,
                            to: b.0,
                            flat: flat(b.0),
                        });
                        addrs.push(slot_addr);
                        slot_addr += 8;
                        i += 1;
                        term_fused = true;
                        continue;
                    }
                    if let (
                        Inst::Cmp { op, dst, lhs, rhs },
                        Terminator::Branch {
                            cond,
                            then_to,
                            else_to,
                        },
                    ) = (inst, &block.term)
                    {
                        if cond == dst {
                            fixups.push(ops.len());
                            ops.push(Op::CmpBranch {
                                op: *op,
                                dst: dst.0,
                                lhs: lhs.0,
                                rhs: rhs.0,
                                then_to: then_to.0,
                                else_to: else_to.0,
                                then_flat: flat(then_to.0),
                                else_flat: flat(else_to.0),
                                here: flat(bi as u32),
                            });
                            addrs.push(slot_addr);
                            slot_addr += 8;
                            i += 1;
                            term_fused = true;
                            continue;
                        }
                    }
                }
                let op = match inst {
                    Inst::Const { dst, value } => Op::Const {
                        dst: dst.0,
                        value: *value,
                    },
                    Inst::Mov { dst, src } => Op::Mov {
                        dst: dst.0,
                        src: src.0,
                    },
                    Inst::Un { op, dst, src } => Op::Un {
                        op: *op,
                        dst: dst.0,
                        src: src.0,
                    },
                    Inst::Bin { op, dst, lhs, rhs } => Op::Bin {
                        op: *op,
                        dst: dst.0,
                        lhs: lhs.0,
                        rhs: rhs.0,
                    },
                    Inst::Cmp { op, dst, lhs, rhs } => Op::Cmp {
                        op: *op,
                        dst: dst.0,
                        lhs: lhs.0,
                        rhs: rhs.0,
                    },
                    Inst::AddrOfGlobal { dst, global } => Op::Const {
                        dst: dst.0,
                        value: mem.global_addr(*global) as i64,
                    },
                    Inst::AddrOfSlot { dst, slot } => Op::AddrOfSlot {
                        dst: dst.0,
                        off: slot_offsets[slot.index()],
                    },
                    Inst::AddrOfFunc { dst, func } => Op::Const {
                        dst: dst.0,
                        value: Memory::encode_func_ptr(*func),
                    },
                    Inst::Ext {
                        dst,
                        src,
                        width,
                        signed,
                    } => Op::Ext {
                        dst: dst.0,
                        src: src.0,
                        width: *width,
                        signed: *signed,
                    },
                    Inst::Load {
                        dst,
                        addr,
                        width,
                        signed,
                    } => Op::Load {
                        dst: dst.0,
                        addr: addr.0,
                        width: *width,
                        signed: *signed,
                    },
                    Inst::Store { addr, src, width } => Op::Store {
                        addr: addr.0,
                        src: src.0,
                        width: *width,
                    },
                    Inst::Call {
                        site,
                        callee,
                        args,
                        dst,
                    } => {
                        let args: Box<[u32]> = args.iter().map(|r| r.0).collect();
                        let dst = dst.map_or(NO_REG, |r| r.0);
                        match callee {
                            Callee::Func(f) => Op::CallFunc {
                                func: f.0,
                                site: site.0,
                                args,
                                dst,
                            },
                            Callee::Ext(x) => Op::CallExt {
                                ext: x.0,
                                site: site.0,
                                args,
                                dst,
                            },
                            Callee::Reg(r) => Op::CallReg {
                                reg: r.0,
                                site: site.0,
                                args,
                                dst,
                            },
                        }
                    }
                };
                ops.push(op);
                addrs.push(slot_addr);
                slot_addr += 4;
                i += 1;
            }
            if !term_fused {
                let op = match &block.term {
                    Terminator::Jump(b) => {
                        fixups.push(ops.len());
                        Op::Jump {
                            to: b.0,
                            flat: flat(b.0),
                        }
                    }
                    Terminator::Branch {
                        cond,
                        then_to,
                        else_to,
                    } => {
                        fixups.push(ops.len());
                        Op::Branch {
                            cond: cond.0,
                            then_to: then_to.0,
                            else_to: else_to.0,
                            then_flat: flat(then_to.0),
                            else_flat: flat(else_to.0),
                            here: flat(bi as u32),
                        }
                    }
                    Terminator::Return(v) => Op::Return {
                        src: v.map_or(NO_REG, |r| r.0),
                    },
                    Terminator::Halt => Op::Halt,
                };
                ops.push(op);
                addrs.push(slot_addr);
            }
            code_cursor += 4 * (n as u64 + 1);
        }

        // Resolve this function's block-id jump targets to absolute
        // op indices.
        for idx in fixups {
            match &mut ops[idx] {
                Op::Jump { to, .. } | Op::MovJump { to, .. } => *to = block_pc[*to as usize],
                Op::Branch {
                    then_to, else_to, ..
                }
                | Op::CmpBranch {
                    then_to, else_to, ..
                }
                | Op::ConstCmpBranch {
                    then_to, else_to, ..
                }
                | Op::SlotLoadBranch {
                    then_to, else_to, ..
                }
                | Op::ConstLoadBranch {
                    then_to, else_to, ..
                } => {
                    *then_to = block_pc[*then_to as usize];
                    *else_to = block_pc[*else_to as usize];
                }
                _ => unreachable!("fixup recorded for a non-jump op"),
            }
        }

        funcs.push(BcFunc {
            entry,
            frame_size: f.frame_size().next_multiple_of(16),
            num_regs: f.num_regs,
            block_base,
        });
        block_base += nblocks as u32;
    }

    Program {
        ops,
        addrs,
        funcs,
        total_blocks: block_base,
    }
}
