//! Runtime errors (traps) raised by the VM.

use std::fmt;

/// A runtime trap. Carries enough context to debug the failing program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// A memory access fell outside the mapped region (includes null-page
    /// accesses).
    OutOfBounds {
        /// The faulting address.
        addr: u64,
        /// Function executing at the time.
        func: String,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Function executing at the time.
        func: String,
    },
    /// An indirect call through a value that is not a function address.
    BadFunctionPointer {
        /// The bad value.
        value: u64,
        /// Function executing at the time.
        func: String,
    },
    /// An indirect call reached a function with a different arity.
    IndirectArityMismatch {
        /// The callee that was reached.
        callee: String,
        /// Arguments passed.
        passed: usize,
        /// Parameters expected.
        expected: usize,
    },
    /// The control stack outgrew its region.
    StackOverflow {
        /// Function that could not be entered.
        func: String,
    },
    /// The configured instruction budget was exhausted (runaway program).
    StepLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
        /// Function executing when the budget ran out.
        func: String,
    },
    /// An `extern` declaration has no matching VM builtin.
    UnknownExtern {
        /// The undeclared name.
        name: String,
        /// Function whose call reached the unresolved extern (empty when
        /// the failure predates execution, e.g. signature checking).
        func: String,
    },
    /// A builtin was called with an invalid argument (bad fd, bad pointer).
    BadBuiltinCall {
        /// Builtin name.
        name: String,
        /// What was wrong.
        reason: String,
        /// Function executing at the time (empty before execution).
        func: String,
    },
    /// The module has no `main` function.
    NoMain,
    /// The heap allocator ran out of space.
    OutOfMemory {
        /// Requested allocation size.
        requested: u64,
        /// Function executing at the time (empty when raised below the
        /// builtin layer, which attributes before surfacing).
        func: String,
    },
    /// The program called `__abort`.
    Abort {
        /// Function that called `__abort`.
        func: String,
    },
}

impl VmError {
    /// Fills an empty `func` attribution with `fname` — used when an error
    /// constructed outside the interpreter loop (extern resolution, the
    /// allocator) surfaces at a point where the executing function is
    /// known.
    #[must_use]
    pub fn attributed_to(mut self, fname: &str) -> VmError {
        match &mut self {
            VmError::UnknownExtern { func, .. }
            | VmError::BadBuiltinCall { func, .. }
            | VmError::OutOfMemory { func, .. }
                if func.is_empty() =>
            {
                *func = fname.to_owned();
            }
            _ => {}
        }
        self
    }

    /// The function this trap is attributed to, when known.
    pub fn func(&self) -> Option<&str> {
        let func = match self {
            VmError::OutOfBounds { func, .. }
            | VmError::DivisionByZero { func }
            | VmError::BadFunctionPointer { func, .. }
            | VmError::StackOverflow { func }
            | VmError::StepLimitExceeded { func, .. }
            | VmError::UnknownExtern { func, .. }
            | VmError::BadBuiltinCall { func, .. }
            | VmError::OutOfMemory { func, .. }
            | VmError::Abort { func } => func,
            VmError::IndirectArityMismatch { callee, .. } => callee,
            VmError::NoMain => return None,
        };
        if func.is_empty() {
            None
        } else {
            Some(func)
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { addr, func } => {
                write!(f, "out-of-bounds memory access at {addr:#x} in `{func}`")
            }
            VmError::DivisionByZero { func } => write!(f, "division by zero in `{func}`"),
            VmError::BadFunctionPointer { value, func } => {
                write!(
                    f,
                    "call through bad function pointer {value:#x} in `{func}`"
                )
            }
            VmError::IndirectArityMismatch {
                callee,
                passed,
                expected,
            } => write!(
                f,
                "indirect call to `{callee}` passed {passed} args, expected {expected}"
            ),
            VmError::StackOverflow { func } => write!(f, "stack overflow entering `{func}`"),
            VmError::StepLimitExceeded { limit, func } => {
                write!(f, "instruction budget of {limit} exhausted in `{func}`")
            }
            VmError::UnknownExtern { name, func } => {
                write!(f, "extern `{name}` has no VM builtin")?;
                if !func.is_empty() {
                    write!(f, " (called from `{func}`)")?;
                }
                Ok(())
            }
            VmError::BadBuiltinCall { name, reason, func } => {
                write!(f, "bad call to builtin `{name}`: {reason}")?;
                if !func.is_empty() {
                    write!(f, " (in `{func}`)")?;
                }
                Ok(())
            }
            VmError::NoMain => write!(f, "module has no `main` function"),
            VmError::OutOfMemory { requested, func } => {
                write!(f, "heap exhausted allocating {requested} bytes")?;
                if !func.is_empty() {
                    write!(f, " (in `{func}`)")?;
                }
                Ok(())
            }
            VmError::Abort { func } => write!(f, "program aborted in `{func}`"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = VmError::OutOfBounds {
            addr: 0x10,
            func: "main".into(),
        };
        assert!(e.to_string().contains("0x10"));
        assert!(e.to_string().contains("main"));
        assert!(VmError::NoMain.to_string().contains("main"));
    }
}
