//! The register-bytecode execution engine (DESIGN.md §12).
//!
//! Executes a [`crate::bytecode::Program`] with a tight dispatch loop:
//! one `pc` into a flat op array, a contiguous register file shared by
//! all live frames (no per-call allocation), and profiling counters in
//! dense flat arrays indexed by function/block id. The counters are
//! folded back into the ordinary [`Profile`] when the run ends, so
//! everything downstream — flow residuals, size accounting, profile
//! files and their checksum footer — is untouched.
//!
//! Parity with [`crate::interp`] is bit-exact and enforced by
//! `tests/parity.rs`: same outputs, same profile records, same traps
//! with the same messages at the same step counts, and the same
//! simulated icache access stream.

use std::collections::HashMap;

use impact_il::{CallSiteId, Module};

use crate::bytecode::{lower, BcFunc, Op, Program, NO_REG};
use crate::error::VmError;
use crate::icache::IcacheSim;
use crate::interp::{eval_bin, eval_cmp, ext_value, RunOutcome, VmConfig};
use crate::memory::Memory;
use crate::os::{BuiltinOutcome, NamedFile, Os};
use crate::profile::{ProfTarget, Profile};

/// Dense profiling counters for one run. Scalars and flat arrays only —
/// nothing on the hot path hashes or chases nested vectors. Folded into
/// a [`Profile`] by [`Counters::fold_into`].
struct Counters {
    control_transfers: u64,
    calls: u64,
    returns: u64,
    max_stack_bytes: u64,
    /// Indexed by `FuncId`.
    func_entries: Vec<u64>,
    /// Indexed by raw `CallSiteId`.
    site_counts: Vec<u64>,
    /// Indexed by `BcFunc::block_base + block`.
    block_exec: Vec<u64>,
    /// Same indexing; then-edge counts of `Branch` terminators.
    branch_taken: Vec<u64>,
    /// Indirect-call target distribution (cold path: only
    /// call-through-pointer sites touch it).
    site_targets: HashMap<CallSiteId, HashMap<ProfTarget, u64>>,
}

impl Counters {
    fn new(module: &Module, prog: &Program) -> Self {
        Counters {
            control_transfers: 0,
            calls: 0,
            returns: 0,
            max_stack_bytes: 0,
            func_entries: vec![0; module.functions.len()],
            site_counts: vec![0; module.call_site_limit() as usize],
            block_exec: vec![0; prog.total_blocks as usize],
            branch_taken: vec![0; prog.total_blocks as usize],
            site_targets: HashMap::new(),
        }
    }

    /// Unflattens the dense arrays into the module-shaped [`Profile`].
    fn fold_into(self, profile: &mut Profile, prog: &Program, il_executed: u64) {
        profile.il_executed = il_executed;
        profile.control_transfers = self.control_transfers;
        profile.calls = self.calls;
        profile.returns = self.returns;
        profile.max_stack_bytes = self.max_stack_bytes;
        profile.func_entries = self.func_entries;
        profile.site_counts = self.site_counts;
        profile.site_targets = self.site_targets;
        for (f, meta) in prog.funcs.iter().enumerate() {
            let base = meta.block_base as usize;
            let nblocks = profile.block_counts[f].len();
            profile.block_counts[f].copy_from_slice(&self.block_exec[base..base + nblocks]);
            profile.branch_taken[f].copy_from_slice(&self.branch_taken[base..base + nblocks]);
        }
    }
}

/// A suspended caller, restored on return.
#[derive(Clone, Copy)]
struct SavedFrame {
    func: u32,
    ret_pc: u32,
    base: u32,
    sp: u64,
    /// Caller register receiving the return value (`NO_REG` for none).
    ret_dst: u32,
}

/// Runs `module` on the bytecode engine. Same contract as
/// [`crate::interp`]'s tree-walker — see [`crate::run`].
pub(crate) fn run(
    module: &Module,
    inputs: Vec<NamedFile>,
    args: Vec<String>,
    config: &VmConfig,
) -> Result<RunOutcome, VmError> {
    let _run_span = config.obs.span("vm:run");
    let main = module.main_id().ok_or(VmError::NoMain)?;
    if module.function(main).num_params != 0 {
        return Err(VmError::BadBuiltinCall {
            name: "main".into(),
            reason: "main must take no parameters".into(),
            func: "main".into(),
        });
    }
    // Externs resolve lazily, per call, exactly like the interpreter: a
    // declared-but-never-called unknown extern must not kill the run.
    let builtins: Vec<Result<crate::os::Builtin, VmError>> = module
        .externs
        .iter()
        .map(crate::os::Builtin::resolve)
        .collect();
    let mut mem = Memory::new(module, config.heap_size, config.stack_size);
    if let Some(limit) = config.mem_limit {
        mem.set_quota(limit);
    }
    let prog = {
        let _lower_span = config.obs.span("vm:lower");
        lower(module, &mem)
    };
    let mut os = Os::new(inputs, args).with_fault(config.fault.clone());
    let mut icache = config.icache.as_ref().map(IcacheSim::new);
    let mut counters = Counters::new(module, &prog);

    let fname = |f: u32| module.functions[f as usize].name.clone();

    // Machine state: absolute pc, current function, the contiguous
    // register file (current frame at `regs[base..]`), stack pointer.
    let mut frames: Vec<SavedFrame> = Vec::with_capacity(64);
    let mut regs: Vec<i64> = Vec::with_capacity(256);
    let mut argv: Vec<i64> = Vec::with_capacity(8);
    let mut cur = main.0;
    let mut base = 0usize;
    let stack_top = mem.stack_top();
    let stack_limit = mem.stack_limit();

    // Enter main.
    let mmeta = &prog.funcs[cur as usize];
    let mut sp = stack_top
        .checked_sub(mmeta.frame_size)
        .filter(|&sp| sp >= stack_limit)
        .ok_or_else(|| VmError::StackOverflow { func: fname(cur) })?;
    counters.func_entries[cur as usize] += 1;
    counters.block_exec[mmeta.block_base as usize] += 1;
    counters.max_stack_bytes = stack_top - sp;
    regs.resize(mmeta.num_regs as usize, 0);
    let mut pc = mmeta.entry as usize;

    let max_steps = config.max_steps;
    let mut steps: u64 = 0;

    macro_rules! step_limit_check {
        () => {
            if steps >= max_steps {
                return Err(VmError::StepLimitExceeded {
                    limit: max_steps,
                    func: fname(cur),
                });
            }
        };
    }
    // The next IL slot of a fused op (`off` bytes past the first):
    // count the slot just executed, re-check the limit, and fetch.
    macro_rules! fused_next_slot {
        (true, $off:expr) => {
            steps += 1;
            step_limit_check!();
            if let Some(sim) = icache.as_mut() {
                sim.access(prog.addrs[pc] + $off);
            }
        };
        (false, $off:expr) => {
            steps += 1;
            step_limit_check!();
        };
    }

    // The dispatch loop is instantiated twice — with and without the
    // icache simulator — so the common (un-simulated) path carries no
    // per-slot `Option` check or synthetic-address fetch. Both copies
    // come from the one macro body below; only the `$icache:literal`
    // differs.
    macro_rules! dispatch_loop {
        ($icache:tt) => {
            loop {
                step_limit_check!();
                if $icache {
                    if let Some(sim) = icache.as_mut() {
                        sim.access(prog.addrs[pc]);
                    }
                }
                match &prog.ops[pc] {
                    Op::Const { dst, value } => {
                        regs[base + *dst as usize] = *value;
                        pc += 1;
                        steps += 1;
                    }
                    Op::Mov { dst, src } => {
                        regs[base + *dst as usize] = regs[base + *src as usize];
                        pc += 1;
                        steps += 1;
                    }
                    Op::Un { op, dst, src } => {
                        let v = regs[base + *src as usize];
                        regs[base + *dst as usize] = match op {
                            impact_il::UnOp::Neg => v.wrapping_neg(),
                            impact_il::UnOp::BitNot => !v,
                            impact_il::UnOp::LogNot => (v == 0) as i64,
                        };
                        pc += 1;
                        steps += 1;
                    }
                    Op::Bin { op, dst, lhs, rhs } => {
                        let a = regs[base + *lhs as usize];
                        let b = regs[base + *rhs as usize];
                        regs[base + *dst as usize] =
                            eval_bin(*op, a, b, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::Cmp { op, dst, lhs, rhs } => {
                        let a = regs[base + *lhs as usize];
                        let b = regs[base + *rhs as usize];
                        regs[base + *dst as usize] = eval_cmp(*op, a, b) as i64;
                        pc += 1;
                        steps += 1;
                    }
                    Op::AddrOfSlot { dst, off } => {
                        regs[base + *dst as usize] = (sp + off) as i64;
                        pc += 1;
                        steps += 1;
                    }
                    Op::Ext {
                        dst,
                        src,
                        width,
                        signed,
                    } => {
                        let v = regs[base + *src as usize];
                        regs[base + *dst as usize] = ext_value(v, *width, *signed);
                        pc += 1;
                        steps += 1;
                    }
                    Op::Load {
                        dst,
                        addr,
                        width,
                        signed,
                    } => {
                        let a = regs[base + *addr as usize] as u64;
                        regs[base + *dst as usize] =
                            mem.load(a, *width, *signed, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::Store { addr, src, width } => {
                        let a = regs[base + *addr as usize] as u64;
                        let v = regs[base + *src as usize];
                        mem.store(a, v, *width, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::CallFunc {
                        func,
                        site,
                        args,
                        dst,
                    } => {
                        steps += 1;
                        counters.calls += 1;
                        counters.site_counts[*site as usize] += 1;
                        argv.clear();
                        argv.extend(args.iter().map(|&r| regs[base + r as usize]));
                        let callee = *func;
                        let meta = &prog.funcs[callee as usize];
                        let new_sp = sp
                            .checked_sub(meta.frame_size)
                            .filter(|&s| s >= stack_limit)
                            .ok_or_else(|| VmError::StackOverflow {
                                func: fname(callee),
                            })?;
                        enter(
                            &mut counters,
                            &mut frames,
                            &mut regs,
                            meta,
                            callee,
                            &argv,
                            SavedFrame {
                                func: cur,
                                ret_pc: (pc + 1) as u32,
                                base: base as u32,
                                sp,
                                ret_dst: *dst,
                            },
                            &mut base,
                            stack_top,
                            new_sp,
                        );
                        cur = callee;
                        sp = new_sp;
                        pc = meta.entry as usize;
                    }
                    Op::CallExt {
                        ext,
                        site,
                        args,
                        dst,
                    } => {
                        steps += 1;
                        counters.calls += 1;
                        counters.site_counts[*site as usize] += 1;
                        argv.clear();
                        argv.extend(args.iter().map(|&r| regs[base + r as usize]));
                        let f = &module.functions[cur as usize].name;
                        let b = match &builtins[*ext as usize] {
                            Ok(b) => *b,
                            Err(e) => return Err(e.clone().attributed_to(f)),
                        };
                        match os.call(b, &argv, &mut mem, f)? {
                            BuiltinOutcome::Value(v) => {
                                if *dst != NO_REG {
                                    regs[base + *dst as usize] = v.unwrap_or(0);
                                }
                                pc += 1;
                            }
                            BuiltinOutcome::Exit(code) => break code,
                        }
                    }
                    Op::CallReg {
                        reg,
                        site,
                        args,
                        dst,
                    } => {
                        steps += 1;
                        counters.calls += 1;
                        counters.site_counts[*site as usize] += 1;
                        argv.clear();
                        argv.extend(args.iter().map(|&r| regs[base + r as usize]));
                        let raw = regs[base + *reg as usize];
                        let target = Memory::decode_func_ptr(
                            raw,
                            module.functions.len(),
                            &module.functions[cur as usize].name,
                        )?;
                        let callee_fn = module.function(target);
                        if callee_fn.num_params as usize != argv.len() {
                            return Err(VmError::IndirectArityMismatch {
                                callee: callee_fn.name.clone(),
                                passed: argv.len(),
                                expected: callee_fn.num_params as usize,
                            });
                        }
                        counters
                            .site_targets
                            .entry(CallSiteId(*site))
                            .or_default()
                            .entry(ProfTarget::Func(target))
                            .and_modify(|n| *n += 1)
                            .or_insert(1);
                        let callee = target.0;
                        let meta = &prog.funcs[callee as usize];
                        let new_sp = sp
                            .checked_sub(meta.frame_size)
                            .filter(|&s| s >= stack_limit)
                            .ok_or_else(|| VmError::StackOverflow {
                                func: fname(callee),
                            })?;
                        enter(
                            &mut counters,
                            &mut frames,
                            &mut regs,
                            meta,
                            callee,
                            &argv,
                            SavedFrame {
                                func: cur,
                                ret_pc: (pc + 1) as u32,
                                base: base as u32,
                                sp,
                                ret_dst: *dst,
                            },
                            &mut base,
                            stack_top,
                            new_sp,
                        );
                        cur = callee;
                        sp = new_sp;
                        pc = meta.entry as usize;
                    }
                    Op::Jump { to, flat } => {
                        steps += 1;
                        counters.control_transfers += 1;
                        counters.block_exec[*flat as usize] += 1;
                        pc = *to as usize;
                    }
                    Op::Branch {
                        cond,
                        then_to,
                        else_to,
                        then_flat,
                        else_flat,
                        here,
                    } => {
                        steps += 1;
                        counters.control_transfers += 1;
                        if regs[base + *cond as usize] != 0 {
                            counters.branch_taken[*here as usize] += 1;
                            counters.block_exec[*then_flat as usize] += 1;
                            pc = *then_to as usize;
                        } else {
                            counters.block_exec[*else_flat as usize] += 1;
                            pc = *else_to as usize;
                        }
                    }
                    Op::Return { src } => {
                        steps += 1;
                        counters.returns += 1;
                        let value = if *src == NO_REG {
                            0
                        } else {
                            regs[base + *src as usize]
                        };
                        match frames.pop() {
                            Some(saved) => {
                                regs.truncate(base);
                                cur = saved.func;
                                base = saved.base as usize;
                                sp = saved.sp;
                                pc = saved.ret_pc as usize;
                                if saved.ret_dst != NO_REG {
                                    regs[base + saved.ret_dst as usize] = value;
                                }
                            }
                            None => break value,
                        }
                    }
                    Op::Halt => {
                        steps += 1;
                        break 0;
                    }
                    Op::CmpBranch {
                        op,
                        dst,
                        lhs,
                        rhs,
                        then_to,
                        else_to,
                        then_flat,
                        else_flat,
                        here,
                    } => {
                        let a = regs[base + *lhs as usize];
                        let b = regs[base + *rhs as usize];
                        let taken = eval_cmp(*op, a, b);
                        regs[base + *dst as usize] = taken as i64;
                        fused_next_slot!($icache, 4);
                        steps += 1;
                        counters.control_transfers += 1;
                        if taken {
                            counters.branch_taken[*here as usize] += 1;
                            counters.block_exec[*then_flat as usize] += 1;
                            pc = *then_to as usize;
                        } else {
                            counters.block_exec[*else_flat as usize] += 1;
                            pc = *else_to as usize;
                        }
                    }
                    Op::ConstBin {
                        op,
                        dst,
                        lhs,
                        imm,
                        tmp,
                    } => {
                        regs[base + *tmp as usize] = *imm;
                        fused_next_slot!($icache, 4);
                        let a = regs[base + *lhs as usize];
                        regs[base + *dst as usize] =
                            eval_bin(*op, a, *imm, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::SlotLoad {
                        dst,
                        off,
                        tmp,
                        width,
                        signed,
                    } => {
                        let a = sp + off;
                        regs[base + *tmp as usize] = a as i64;
                        fused_next_slot!($icache, 4);
                        regs[base + *dst as usize] =
                            mem.load(a, *width, *signed, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::SlotStore {
                        off,
                        src,
                        tmp,
                        width,
                    } => {
                        let a = sp + off;
                        regs[base + *tmp as usize] = a as i64;
                        fused_next_slot!($icache, 4);
                        let v = regs[base + *src as usize];
                        mem.store(a, v, *width, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::MovJump { dst, src, to, flat } => {
                        regs[base + *dst as usize] = regs[base + *src as usize];
                        fused_next_slot!($icache, 4);
                        steps += 1;
                        counters.control_transfers += 1;
                        counters.block_exec[*flat as usize] += 1;
                        pc = *to as usize;
                    }
                    Op::ConstCmp {
                        op,
                        dst,
                        lhs,
                        imm,
                        tmp,
                    } => {
                        regs[base + *tmp as usize] = *imm;
                        fused_next_slot!($icache, 4);
                        let a = regs[base + *lhs as usize];
                        regs[base + *dst as usize] = eval_cmp(*op, a, *imm) as i64;
                        pc += 1;
                        steps += 1;
                    }
                    Op::ConstLoad {
                        dst,
                        value,
                        tmp,
                        width,
                        signed,
                    } => {
                        regs[base + *tmp as usize] = *value;
                        fused_next_slot!($icache, 4);
                        regs[base + *dst as usize] = mem.load(
                            *value as u64,
                            *width,
                            *signed,
                            &module.functions[cur as usize].name,
                        )?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::ConstCmpBranch {
                        op,
                        dst,
                        lhs,
                        imm,
                        tmp,
                        then_to,
                        else_to,
                        then_flat,
                        else_flat,
                        here,
                    } => {
                        regs[base + *tmp as usize] = *imm;
                        fused_next_slot!($icache, 4);
                        let a = regs[base + *lhs as usize];
                        let taken = eval_cmp(*op, a, *imm);
                        regs[base + *dst as usize] = taken as i64;
                        fused_next_slot!($icache, 8);
                        steps += 1;
                        counters.control_transfers += 1;
                        if taken {
                            counters.branch_taken[*here as usize] += 1;
                            counters.block_exec[*then_flat as usize] += 1;
                            pc = *then_to as usize;
                        } else {
                            counters.block_exec[*else_flat as usize] += 1;
                            pc = *else_to as usize;
                        }
                    }
                    Op::ConstConstBin {
                        op,
                        dst,
                        lhs,
                        imm1,
                        tmp1,
                        imm2,
                        tmp2,
                    } => {
                        regs[base + *tmp1 as usize] = *imm1;
                        fused_next_slot!($icache, 4);
                        regs[base + *tmp2 as usize] = *imm2;
                        fused_next_slot!($icache, 8);
                        let a = regs[base + *lhs as usize];
                        regs[base + *dst as usize] =
                            eval_bin(*op, a, *imm2, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::BinLoad {
                        op,
                        tmp,
                        lhs,
                        rhs,
                        dst,
                        width,
                        signed,
                    } => {
                        let a = regs[base + *lhs as usize];
                        let b = regs[base + *rhs as usize];
                        let addr = eval_bin(*op, a, b, &module.functions[cur as usize].name)?;
                        regs[base + *tmp as usize] = addr;
                        fused_next_slot!($icache, 4);
                        regs[base + *dst as usize] = mem.load(
                            addr as u64,
                            *width,
                            *signed,
                            &module.functions[cur as usize].name,
                        )?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::MovStore {
                        dst,
                        src,
                        addr,
                        width,
                    } => {
                        let v = regs[base + *src as usize];
                        regs[base + *dst as usize] = v;
                        fused_next_slot!($icache, 4);
                        let a = regs[base + *addr as usize] as u64;
                        mem.store(a, v, *width, &module.functions[cur as usize].name)?;
                        pc += 1;
                        steps += 1;
                    }
                    Op::SlotLoadBranch {
                        dst,
                        off,
                        tmp,
                        width,
                        signed,
                        then_to,
                        else_to,
                        then_flat,
                        else_flat,
                        here,
                    } => {
                        let a = sp + off;
                        regs[base + *tmp as usize] = a as i64;
                        fused_next_slot!($icache, 4);
                        let v =
                            mem.load(a, *width, *signed, &module.functions[cur as usize].name)?;
                        regs[base + *dst as usize] = v;
                        fused_next_slot!($icache, 8);
                        steps += 1;
                        counters.control_transfers += 1;
                        if v != 0 {
                            counters.branch_taken[*here as usize] += 1;
                            counters.block_exec[*then_flat as usize] += 1;
                            pc = *then_to as usize;
                        } else {
                            counters.block_exec[*else_flat as usize] += 1;
                            pc = *else_to as usize;
                        }
                    }
                    Op::ConstLoadBranch {
                        dst,
                        value,
                        tmp,
                        width,
                        signed,
                        then_to,
                        else_to,
                        then_flat,
                        else_flat,
                        here,
                    } => {
                        regs[base + *tmp as usize] = *value;
                        fused_next_slot!($icache, 4);
                        let v = mem.load(
                            *value as u64,
                            *width,
                            *signed,
                            &module.functions[cur as usize].name,
                        )?;
                        regs[base + *dst as usize] = v;
                        fused_next_slot!($icache, 8);
                        steps += 1;
                        counters.control_transfers += 1;
                        if v != 0 {
                            counters.branch_taken[*here as usize] += 1;
                            counters.block_exec[*then_flat as usize] += 1;
                            pc = *then_to as usize;
                        } else {
                            counters.block_exec[*else_flat as usize] += 1;
                            pc = *else_to as usize;
                        }
                    }
                }
            }
        };
    }
    let exit_code: i64 = if icache.is_some() {
        dispatch_loop!(true)
    } else {
        dispatch_loop!(false)
    };

    let (stdout, stderr, files) = os.into_outputs();
    let icache = icache.map(|sim| sim.stats());
    let mut profile = Profile::for_module(module);
    profile.runs = 1;
    counters.fold_into(&mut profile, &prog, steps);
    if config.obs.is_enabled() {
        config.obs.count("vm:il_executed", profile.il_executed);
        config
            .obs
            .count("vm:control_transfers", profile.control_transfers);
        config.obs.count("vm:calls", profile.calls);
        config.obs.count("vm:returns", profile.returns);
        if let Some(stats) = &icache {
            config.obs.count("vm:icache_accesses", stats.accesses);
            config.obs.count("vm:icache_misses", stats.misses);
        }
    }
    Ok(RunOutcome {
        exit_code,
        stdout,
        stderr,
        files,
        profile,
        icache,
    })
}

/// Pushes the caller's state and lays out the callee's frame at the end
/// of the shared register file (no allocation once the file is warm).
#[allow(clippy::too_many_arguments)]
fn enter(
    counters: &mut Counters,
    frames: &mut Vec<SavedFrame>,
    regs: &mut Vec<i64>,
    meta: &BcFunc,
    callee: u32,
    argv: &[i64],
    saved: SavedFrame,
    base: &mut usize,
    stack_top: u64,
    new_sp: u64,
) {
    counters.func_entries[callee as usize] += 1;
    counters.block_exec[meta.block_base as usize] += 1;
    let used = stack_top - new_sp;
    if used > counters.max_stack_bytes {
        counters.max_stack_bytes = used;
    }
    frames.push(saved);
    let new_base = regs.len();
    regs.resize(new_base + meta.num_regs as usize, 0);
    regs[new_base..new_base + argv.len()].copy_from_slice(argv);
    *base = new_base;
}
