//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a failpoint table: each armed key names one place in
//! the pipeline that should fail, and *which* hit of that place should
//! fail (the Nth time execution reaches it). The same plan is threaded
//! through `VmConfig` and `InlineConfig`, so a single `--fault` flag on
//! the driver can reach every recovery path — the Nth arc expansion's
//! verifier check, the Nth VM allocation, a profile parse — and tests can
//! prove each rollback fires.
//!
//! Keys are namespaced strings:
//!
//! | key              | effect                                              |
//! |------------------|-----------------------------------------------------|
//! | `expand:verify`  | Nth inlined arc fails post-expansion verification   |
//! | `promote:verify` | Nth promoted call site fails verification           |
//! | `opt:pass`       | Nth optimization pass application panics            |
//! | `opt:fixpoint`   | Nth function's optimizer fixpoint loop "oscillates" |
//! | `vm:oom`         | Nth VM heap allocation traps with `OutOfMemory`     |
//! | `profile:parse`  | Nth profile-text parse fails as corrupt             |
//! | `inline:verify`  | Nth post-inline module verification fails *hard*    |
//! | `journal:crash`  | process aborts *before* the Nth journal append      |
//! | `journal:torn`   | Nth journal append writes a torn half-record, aborts |
//! | `journal:crash-after` | process aborts right *after* the Nth append    |
//!
//! Unlike the others, `inline:verify` is deliberately not recovered by the
//! driver: it models the unrecoverable class of failure (a miscompile the
//! robustness layer could not repair) that the batch supervisor must
//! quarantine, report, and minimize. The `journal:*` keys are harsher
//! still: they kill the whole *process* (SIGABRT) at a chosen campaign
//! journal event, so the crash→resume recovery tests can prove that no
//! completed work is lost and no torn artifact survives a resume.
//!
//! Counters live behind an `Arc`, so clones of a plan share hit counts:
//! "the 3rd expansion overall", not "the 3rd per clone". Every trigger is
//! one-shot — after it fires the key is spent and later hits proceed
//! normally, which keeps "fail the Nth, then recover and finish" scenarios
//! deterministic end to end.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Point {
    /// Fire when `hits` reaches this value (1-based).
    trigger_at: u64,
    /// Times this key has been evaluated so far.
    hits: u64,
    /// Whether the point already fired (one-shot).
    fired: bool,
}

/// A shared table of armed failpoints. The default plan is empty and
/// every check is a cheap no-op.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    points: Arc<Mutex<HashMap<String, Point>>>,
}

impl FaultPlan {
    /// An empty plan (no faults armed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms `key` to fire on its `nth` hit (1-based; 0 is treated as 1).
    pub fn arm(&self, key: &str, nth: u64) {
        let mut points = self.points.lock().expect("fault plan poisoned");
        points.insert(
            key.to_string(),
            Point {
                trigger_at: nth.max(1),
                hits: 0,
                fired: false,
            },
        );
    }

    /// Parses and arms a `--fault` spec: `domain:point`, `domain:point:N`,
    /// or `domain:point=N`. `N` defaults to 1 (the first hit).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn arm_spec(&self, spec: &str) -> Result<(), String> {
        let (key, nth) = match spec.split_once('=') {
            Some((key, n)) => (key, parse_nth(spec, n)?),
            None => {
                // `domain:point:N` — split on the last colon only if the
                // tail is numeric, so bare `profile:parse` stays whole.
                match spec.rsplit_once(':') {
                    Some((key, tail))
                        if tail.chars().all(|c| c.is_ascii_digit()) && !tail.is_empty() =>
                    {
                        (key, parse_nth(spec, tail)?)
                    }
                    _ => (spec, 1),
                }
            }
        };
        let key = key.trim();
        if key.is_empty() || !key.contains(':') {
            return Err(format!(
                "bad fault spec '{spec}': expected DOMAIN:POINT[:N] (e.g. expand:verify:1)"
            ));
        }
        self.arm(key, nth);
        Ok(())
    }

    /// Evaluates `key`: counts the hit and reports whether the armed
    /// fault fires here. Unarmed keys never fire.
    pub fn should_fail(&self, key: &str) -> bool {
        let mut points = self.points.lock().expect("fault plan poisoned");
        let Some(point) = points.get_mut(key) else {
            return false;
        };
        if point.fired {
            return false;
        }
        point.hits += 1;
        if point.hits == point.trigger_at {
            point.fired = true;
            true
        } else {
            false
        }
    }

    /// True when no faults are armed.
    pub fn is_empty(&self) -> bool {
        self.points.lock().expect("fault plan poisoned").is_empty()
    }

    /// Keys that were armed but never fired — a test asking for the 7th
    /// expansion when only 3 happen wants to know its fault went unused.
    pub fn unfired(&self) -> Vec<String> {
        let points = self.points.lock().expect("fault plan poisoned");
        let mut keys: Vec<String> = points
            .iter()
            .filter(|(_, p)| !p.fired)
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let points = self.points.lock().expect("fault plan poisoned");
        let mut keys: Vec<String> = points
            .iter()
            .map(|(k, p)| format!("{k}:{}", p.trigger_at))
            .collect();
        keys.sort();
        write!(f, "{}", keys.join(","))
    }
}

fn parse_nth(spec: &str, text: &str) -> Result<u64, String> {
    text.trim()
        .parse::<u64>()
        .map_err(|_| format!("bad fault spec '{spec}': '{text}' is not a count"))
}

#[cfg(test)]
mod tests {
    use super::FaultPlan;

    #[test]
    fn unarmed_keys_never_fire() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.should_fail("vm:oom"));
    }

    #[test]
    fn fires_exactly_on_nth_hit_once() {
        let plan = FaultPlan::new();
        plan.arm("expand:verify", 3);
        assert!(!plan.should_fail("expand:verify"));
        assert!(!plan.should_fail("expand:verify"));
        assert!(plan.should_fail("expand:verify"));
        assert!(!plan.should_fail("expand:verify"), "one-shot after firing");
        assert!(plan.unfired().is_empty());
    }

    #[test]
    fn clones_share_hit_counters() {
        let plan = FaultPlan::new();
        plan.arm("vm:oom", 2);
        let clone = plan.clone();
        assert!(!clone.should_fail("vm:oom"));
        assert!(
            plan.should_fail("vm:oom"),
            "second hit counted across clones"
        );
    }

    #[test]
    fn spec_parsing_variants() {
        let plan = FaultPlan::new();
        plan.arm_spec("expand:verify:3").unwrap();
        plan.arm_spec("vm:oom=128").unwrap();
        plan.arm_spec("profile:parse").unwrap();
        assert_eq!(
            plan.to_string(),
            "expand:verify:3,profile:parse:1,vm:oom:128"
        );
        assert!(plan.arm_spec("").is_err());
        assert!(plan.arm_spec("nodomaincolon").is_err());
        assert!(plan.arm_spec("vm:oom=notanumber").is_err());
    }

    #[test]
    fn zero_count_means_first_hit() {
        let plan = FaultPlan::new();
        plan.arm_spec("opt:pass:0").unwrap();
        assert!(plan.should_fail("opt:pass"));
    }

    #[test]
    fn unfired_reports_leftover_keys() {
        let plan = FaultPlan::new();
        plan.arm("expand:verify", 7);
        plan.should_fail("expand:verify");
        assert_eq!(plan.unfired(), vec!["expand:verify".to_string()]);
    }
}
