//! Instruction-cache simulation (extension).
//!
//! The paper's conclusion reports that inline expansion *improves*
//! instruction-cache behavior despite the larger static code: expansion
//! gives the hot path a contiguous layout and removes the mapping
//! conflicts between caller and callee (§5, citing the authors' ISCA'89
//! companion study). This module lets the VM replay its dynamic
//! instruction stream through a parameterized set-associative cache so
//! that the claim can be measured on this reproduction.
//!
//! Instructions are laid out like a simple code generator would: one
//! 4-byte slot per IL instruction, functions placed back to back in
//! [`impact_il::FuncId`] order.

/// Geometry of the simulated instruction cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IcacheConfig {
    /// Total capacity in bytes (must be a multiple of `line_bytes *
    /// assoc`).
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
}

impl IcacheConfig {
    /// A small direct-mapped cache of the paper's era (8 KiB, 32-byte
    /// lines) — the configuration where mapping conflicts bite hardest.
    pub fn small_direct_mapped() -> Self {
        IcacheConfig {
            size_bytes: 8 << 10,
            line_bytes: 32,
            assoc: 1,
        }
    }
}

/// Hit/miss counts from one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IcacheStats {
    /// Instruction fetches issued.
    pub accesses: u64,
    /// Fetches that missed.
    pub misses: u64,
}

impl IcacheStats {
    /// Miss ratio in [0, 1]; 0 for an idle cache.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement, fed instruction
/// addresses.
#[derive(Clone, Debug)]
pub struct IcacheSim {
    line_shift: u32,
    num_sets: u64,
    /// Per-set tag list, most recently used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    stats: IcacheStats,
}

impl IcacheSim {
    /// Builds the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (`line_bytes` not a power
    /// of two, or capacity not divisible by `line_bytes * assoc`).
    pub fn new(cfg: &IcacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(cfg.assoc >= 1, "associativity must be at least 1");
        let lines = cfg.size_bytes / cfg.line_bytes;
        assert!(
            lines.is_multiple_of(cfg.assoc as u64) && lines > 0,
            "capacity must hold a whole number of sets"
        );
        let num_sets = lines / cfg.assoc as u64;
        IcacheSim {
            line_shift: cfg.line_bytes.trailing_zeros(),
            num_sets,
            sets: vec![Vec::with_capacity(cfg.assoc as usize); num_sets as usize],
            assoc: cfg.assoc as usize,
            stats: IcacheStats::default(),
        }
    }

    /// Simulates one instruction fetch.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Hit: move to MRU position.
            ways[..=pos].rotate_right(1);
            return;
        }
        self.stats.misses += 1;
        if ways.len() == self.assoc {
            ways.pop();
        }
        ways.insert(0, tag);
    }

    /// The counts so far.
    pub fn stats(&self) -> IcacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, line: u64, assoc: u32) -> IcacheConfig {
        IcacheConfig {
            size_bytes: size,
            line_bytes: line,
            assoc,
        }
    }

    #[test]
    fn sequential_fetches_miss_once_per_line() {
        let mut sim = IcacheSim::new(&cfg(1024, 32, 1));
        for i in 0..256u64 {
            sim.access(i * 4); // 1024 bytes = 32 lines
        }
        let s = sim.stats();
        assert_eq!(s.accesses, 256);
        assert_eq!(s.misses, 32);
    }

    #[test]
    fn loop_that_fits_hits_after_warmup() {
        let mut sim = IcacheSim::new(&cfg(1024, 32, 1));
        for _ in 0..10 {
            for i in 0..64u64 {
                sim.access(i * 4); // 256 bytes, fits easily
            }
        }
        let s = sim.stats();
        assert_eq!(s.misses, 8); // 8 lines, warmed once
    }

    #[test]
    fn direct_mapped_conflict_thrashes() {
        // Two addresses exactly one cache-size apart conflict in a
        // direct-mapped cache...
        let mut dm = IcacheSim::new(&cfg(1024, 32, 1));
        for _ in 0..100 {
            dm.access(0);
            dm.access(1024);
        }
        assert_eq!(dm.stats().misses, 200);
        // ...but coexist in a 2-way cache.
        let mut two_way = IcacheSim::new(&cfg(1024, 32, 2));
        for _ in 0..100 {
            two_way.access(0);
            two_way.access(1024);
        }
        assert_eq!(two_way.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, 1 set (64 bytes total, 32-byte lines).
        let mut sim = IcacheSim::new(&cfg(64, 32, 2));
        sim.access(0); // miss, {0}
        sim.access(64); // miss, {64, 0}
        sim.access(0); // hit,  {0, 64}
        sim.access(128); // miss, evicts 64 -> {128, 0}
        sim.access(0); // hit
        sim.access(64); // miss again
        let s = sim.stats();
        assert_eq!(s.accesses, 6);
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn miss_ratio_is_sane() {
        assert_eq!(IcacheStats::default().miss_ratio(), 0.0);
        let s = IcacheStats {
            accesses: 10,
            misses: 4,
        };
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_bad_line_size() {
        let _ = IcacheSim::new(&cfg(1024, 24, 1));
    }
}
