//! The IL interpreter with profiling instrumentation.
//!
//! Execution counts every instruction and terminator as one intermediate
//! instruction (the paper's `IL's`), every executed jump/branch as one
//! control transfer, and every call instruction as one dynamic call, while
//! recording node weights (function entries) and arc weights (call-site
//! counts) for the weighted call graph.

use impact_il::{BinOp, Callee, CmpOp, FuncId, Inst, Module, Reg, Terminator, UnOp, Width};

use crate::error::VmError;
use crate::fault::FaultPlan;
use crate::icache::{IcacheConfig, IcacheSim, IcacheStats};
use crate::memory::Memory;
use crate::os::{BuiltinOutcome, NamedFile, Os};
use crate::profile::{ProfTarget, Profile};

/// Selects which execution engine runs the module.
///
/// Both engines implement identical semantics — same outputs, same
/// profile records, same traps with the same messages at the same step
/// counts, same simulated icache stream — enforced by the differential
/// parity suite (`tests/parity.rs`). The choice therefore never affects
/// results, only wall-clock, and is excluded from campaign fingerprints
/// and cache keys like the telemetry flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The tree-walking interpreter over IL structure — the reference
    /// semantics, kept as the differential baseline.
    Interp,
    /// The flat register-bytecode engine (default): pre-lowered code
    /// with absolute jump targets, superinstructions, and dense
    /// profiling counters. See `DESIGN.md` §12.
    #[default]
    Bytecode,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "interp" => Ok(Engine::Interp),
            "bytecode" => Ok(Engine::Bytecode),
            other => Err(format!(
                "unknown engine `{other}`; expected `interp` or `bytecode`"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Interp => "interp",
            Engine::Bytecode => "bytecode",
        })
    }
}

/// Resource limits and sizes for one run.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Maximum executed IL instructions before the run is aborted.
    pub max_steps: u64,
    /// Heap segment size in bytes.
    pub heap_size: u64,
    /// Stack segment size in bytes.
    pub stack_size: u64,
    /// Heap allocation quota in bytes (the `--mem-limit` governor knob):
    /// total `__malloc`'d bytes may not exceed this, independent of the
    /// segment size. `None` leaves only the segment bound.
    pub mem_limit: Option<u64>,
    /// When set, replay the dynamic instruction stream through a
    /// simulated instruction cache (see [`crate::IcacheSim`]); adds
    /// roughly 2x interpretation overhead.
    pub icache: Option<IcacheConfig>,
    /// Armed failpoints (`vm:oom`, ...); empty by default. Shared with
    /// the rest of the pipeline so hit counts are global (see
    /// [`FaultPlan`]).
    pub fault: FaultPlan,
    /// Pipeline telemetry sink. Disabled by default: the interpreter
    /// then records nothing and reads no clock.
    pub obs: impact_obs::Telemetry,
    /// Which execution engine to use. Defaults to [`Engine::Bytecode`];
    /// the choice cannot affect any observable result (see [`Engine`]).
    pub engine: Engine,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_steps: 2_000_000_000,
            heap_size: 32 << 20,
            stack_size: 4 << 20,
            mem_limit: None,
            icache: None,
            fault: FaultPlan::default(),
            obs: impact_obs::Telemetry::disabled(),
            engine: Engine::default(),
        }
    }
}

/// The result of a completed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `main`'s return value, or the argument of `__exit`.
    pub exit_code: i64,
    /// Bytes written to stdout.
    pub stdout: Vec<u8>,
    /// Bytes written to stderr.
    pub stderr: Vec<u8>,
    /// Files created with `__creat`, with their contents.
    pub files: Vec<(String, Vec<u8>)>,
    /// The execution profile of this run (`runs == 1`).
    pub profile: Profile,
    /// Instruction-cache statistics, when [`VmConfig::icache`] was set.
    pub icache: Option<IcacheStats>,
}

struct Frame {
    func: FuncId,
    block: usize,
    inst: usize,
    regs: Vec<i64>,
    sp: u64,
    ret_dst: Option<Reg>,
}

struct FuncMeta {
    frame_size: u64,
    slot_offsets: Vec<u64>,
    /// Synthetic code address of the function's first instruction
    /// (functions laid out back to back, 4 bytes per IL instruction).
    code_base: u64,
    /// Instruction-slot offset of each block within the function.
    block_offsets: Vec<u64>,
}

/// Runs `module` from `main` to completion under `config`, with the given
/// input files and program arguments, on the engine selected by
/// [`VmConfig::engine`].
///
/// # Errors
///
/// Returns a [`VmError`] on any trap (wild memory access, division by
/// zero, stack overflow, step-limit exhaustion, unknown extern, abort).
pub fn run(
    module: &Module,
    inputs: Vec<NamedFile>,
    args: Vec<String>,
    config: &VmConfig,
) -> Result<RunOutcome, VmError> {
    match config.engine {
        Engine::Interp => run_interp(module, inputs, args, config),
        Engine::Bytecode => crate::exec::run(module, inputs, args, config),
    }
}

/// The tree-walking reference interpreter over the IL structure.
fn run_interp(
    module: &Module,
    inputs: Vec<NamedFile>,
    args: Vec<String>,
    config: &VmConfig,
) -> Result<RunOutcome, VmError> {
    let _run_span = config.obs.span("vm:run");
    let main = module.main_id().ok_or(VmError::NoMain)?;
    if module.function(main).num_params != 0 {
        return Err(VmError::BadBuiltinCall {
            name: "main".into(),
            reason: "main must take no parameters".into(),
            func: "main".into(),
        });
    }
    // Externs resolve lazily, per call: a declared-but-never-called
    // unknown extern must not kill the run, and a failure that does fire
    // can then name the calling function.
    let builtins: Vec<Result<crate::os::Builtin, VmError>> = module
        .externs
        .iter()
        .map(crate::os::Builtin::resolve)
        .collect();
    let mut code_cursor = 0u64;
    let metas: Vec<FuncMeta> = module
        .functions
        .iter()
        .map(|f| {
            let mut block_offsets = Vec::with_capacity(f.blocks.len());
            let mut off = 0u64;
            for b in &f.blocks {
                block_offsets.push(off);
                off += b.insts.len() as u64 + 1;
            }
            let meta = FuncMeta {
                frame_size: f.frame_size().next_multiple_of(16),
                slot_offsets: f.slot_offsets(),
                code_base: code_cursor,
                block_offsets,
            };
            code_cursor += off * 4;
            meta
        })
        .collect();
    let mut icache = config.icache.as_ref().map(IcacheSim::new);
    let mut mem = Memory::new(module, config.heap_size, config.stack_size);
    if let Some(limit) = config.mem_limit {
        mem.set_quota(limit);
    }
    let mut os = Os::new(inputs, args).with_fault(config.fault.clone());
    let mut profile = Profile::for_module(module);
    profile.runs = 1;

    let mut frames: Vec<Frame> = Vec::with_capacity(64);
    let initial_sp = mem.stack_top();
    push_frame(
        module,
        &metas,
        &mut mem,
        &mut profile,
        &mut frames,
        main,
        &[],
        None,
        initial_sp,
    )?;

    let exit_code = loop {
        if profile.il_executed >= config.max_steps {
            return Err(VmError::StepLimitExceeded {
                limit: config.max_steps,
                func: frames
                    .last()
                    .map(|fr| module.function(fr.func).name.clone())
                    .unwrap_or_default(),
            });
        }
        let fr = frames.last_mut().expect("at least one frame");
        let func = module.function(fr.func);
        let fname = func.name.as_str();
        let block = &func.blocks[fr.block];

        if let Some(sim) = icache.as_mut() {
            let meta = &metas[fr.func.index()];
            sim.access(meta.code_base + 4 * (meta.block_offsets[fr.block] + fr.inst as u64));
        }
        if fr.inst < block.insts.len() {
            let inst = &block.insts[fr.inst];
            fr.inst += 1;
            profile.il_executed += 1;
            match inst {
                Inst::Const { dst, value } => fr.regs[dst.index()] = *value,
                Inst::Mov { dst, src } => fr.regs[dst.index()] = fr.regs[src.index()],
                Inst::Un { op, dst, src } => {
                    let v = fr.regs[src.index()];
                    fr.regs[dst.index()] = match op {
                        UnOp::Neg => v.wrapping_neg(),
                        UnOp::BitNot => !v,
                        UnOp::LogNot => (v == 0) as i64,
                    };
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    let a = fr.regs[lhs.index()];
                    let b = fr.regs[rhs.index()];
                    fr.regs[dst.index()] = eval_bin_outlined(*op, a, b, fname)?;
                }
                Inst::Cmp { op, dst, lhs, rhs } => {
                    let a = fr.regs[lhs.index()];
                    let b = fr.regs[rhs.index()];
                    fr.regs[dst.index()] = eval_cmp_outlined(*op, a, b) as i64;
                }
                Inst::AddrOfGlobal { dst, global } => {
                    fr.regs[dst.index()] = mem.global_addr(*global) as i64;
                }
                Inst::AddrOfSlot { dst, slot } => {
                    fr.regs[dst.index()] =
                        (fr.sp + metas[fr.func.index()].slot_offsets[slot.index()]) as i64;
                }
                Inst::AddrOfFunc { dst, func } => {
                    fr.regs[dst.index()] = Memory::encode_func_ptr(*func);
                }
                Inst::Ext {
                    dst,
                    src,
                    width,
                    signed,
                } => {
                    let v = fr.regs[src.index()];
                    fr.regs[dst.index()] = ext_value_outlined(v, *width, *signed);
                }
                Inst::Load {
                    dst,
                    addr,
                    width,
                    signed,
                } => {
                    let a = fr.regs[addr.index()] as u64;
                    fr.regs[dst.index()] = mem.load(a, *width, *signed, fname)?;
                }
                Inst::Store { addr, src, width } => {
                    let a = fr.regs[addr.index()] as u64;
                    let v = fr.regs[src.index()];
                    mem.store(a, v, *width, fname)?;
                }
                Inst::Call {
                    site,
                    callee,
                    args,
                    dst,
                } => {
                    profile.calls += 1;
                    profile.site_counts[site.0 as usize] += 1;
                    let argv: Vec<i64> = args.iter().map(|r| fr.regs[r.index()]).collect();
                    let dst = *dst;
                    let site = *site;
                    match callee {
                        Callee::Func(f) => {
                            let f = *f;
                            let sp = fr.sp;
                            push_frame(
                                module,
                                &metas,
                                &mut mem,
                                &mut profile,
                                &mut frames,
                                f,
                                &argv,
                                dst,
                                sp,
                            )?;
                        }
                        Callee::Ext(x) => {
                            let b = match &builtins[x.index()] {
                                Ok(b) => *b,
                                Err(e) => return Err(e.clone().attributed_to(fname)),
                            };
                            match os.call(b, &argv, &mut mem, fname)? {
                                BuiltinOutcome::Value(v) => {
                                    if let Some(d) = dst {
                                        fr.regs[d.index()] = v.unwrap_or(0);
                                    }
                                }
                                BuiltinOutcome::Exit(code) => break code,
                            }
                        }
                        Callee::Reg(r) => {
                            let raw = fr.regs[r.index()];
                            let target =
                                Memory::decode_func_ptr(raw, module.functions.len(), fname)?;
                            let callee_fn = module.function(target);
                            if callee_fn.num_params as usize != argv.len() {
                                return Err(VmError::IndirectArityMismatch {
                                    callee: callee_fn.name.clone(),
                                    passed: argv.len(),
                                    expected: callee_fn.num_params as usize,
                                });
                            }
                            profile
                                .site_targets
                                .entry(site)
                                .or_default()
                                .entry(ProfTarget::Func(target))
                                .and_modify(|n| *n += 1)
                                .or_insert(1);
                            let sp = fr.sp;
                            push_frame(
                                module,
                                &metas,
                                &mut mem,
                                &mut profile,
                                &mut frames,
                                target,
                                &argv,
                                dst,
                                sp,
                            )?;
                        }
                    }
                }
            }
            continue;
        }

        // Terminator.
        profile.il_executed += 1;
        match &block.term {
            Terminator::Jump(b) => {
                profile.control_transfers += 1;
                fr.block = b.index();
                fr.inst = 0;
                profile.block_counts[fr.func.index()][fr.block] += 1;
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                profile.control_transfers += 1;
                let taken = if fr.regs[cond.index()] != 0 {
                    profile.branch_taken[fr.func.index()][fr.block] += 1;
                    then_to
                } else {
                    else_to
                };
                fr.block = taken.index();
                fr.inst = 0;
                profile.block_counts[fr.func.index()][fr.block] += 1;
            }
            Terminator::Return(v) => {
                profile.returns += 1;
                let value = v.map(|r| fr.regs[r.index()]).unwrap_or(0);
                let ret_dst = fr.ret_dst;
                frames.pop();
                match frames.last_mut() {
                    Some(caller) => {
                        if let Some(d) = ret_dst {
                            caller.regs[d.index()] = value;
                        }
                    }
                    None => break value,
                }
            }
            Terminator::Halt => break 0,
        }
    };

    let (stdout, stderr, files) = os.into_outputs();
    let icache = icache.map(|sim| sim.stats());
    if config.obs.is_enabled() {
        config.obs.count("vm:il_executed", profile.il_executed);
        config
            .obs
            .count("vm:control_transfers", profile.control_transfers);
        config.obs.count("vm:calls", profile.calls);
        config.obs.count("vm:returns", profile.returns);
        if let Some(stats) = &icache {
            config.obs.count("vm:icache_accesses", stats.accesses);
            config.obs.count("vm:icache_misses", stats.misses);
        }
    }
    Ok(RunOutcome {
        exit_code,
        stdout,
        stderr,
        files,
        profile,
        icache,
    })
}

#[allow(clippy::too_many_arguments)]
fn push_frame(
    module: &Module,
    metas: &[FuncMeta],
    mem: &mut Memory,
    profile: &mut Profile,
    frames: &mut Vec<Frame>,
    func: FuncId,
    args: &[i64],
    ret_dst: Option<Reg>,
    caller_sp: u64,
) -> Result<(), VmError> {
    let f = module.function(func);
    debug_assert_eq!(f.num_params as usize, args.len());
    let meta = &metas[func.index()];
    let sp = caller_sp
        .checked_sub(meta.frame_size)
        .filter(|&sp| sp >= mem.stack_limit())
        .ok_or_else(|| VmError::StackOverflow {
            func: f.name.clone(),
        })?;
    profile.func_entries[func.index()] += 1;
    profile.block_counts[func.index()][0] += 1;
    let used = mem.stack_top() - sp;
    if used > profile.max_stack_bytes {
        profile.max_stack_bytes = used;
    }
    let mut regs = vec![0i64; f.num_regs as usize];
    regs[..args.len()].copy_from_slice(args);
    frames.push(Frame {
        func,
        block: 0,
        inst: 0,
        regs,
        sp,
        ret_dst,
    });
    Ok(())
}

/// Shared binary-operator semantics (both engines call this).
/// Outlined wrappers for the tree-walker: its dispatch match is
/// register-starved, and measurably faster with the ALU helpers kept
/// out of line, while the bytecode loop in [`crate::exec`] wants them
/// inlined. Same functions either way — parity is unaffected.
#[inline(never)]
fn eval_bin_outlined(op: BinOp, a: i64, b: i64, func: &str) -> Result<i64, VmError> {
    eval_bin(op, a, b, func)
}

#[inline(never)]
fn eval_cmp_outlined(op: CmpOp, a: i64, b: i64) -> bool {
    eval_cmp(op, a, b)
}

#[inline(never)]
fn ext_value_outlined(v: i64, width: Width, signed: bool) -> i64 {
    ext_value(v, width, signed)
}

#[inline(always)]
pub(crate) fn eval_bin(op: BinOp, a: i64, b: i64, func: &str) -> Result<i64, VmError> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(VmError::DivisionByZero {
                    func: func.to_owned(),
                });
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(VmError::DivisionByZero {
                    func: func.to_owned(),
                });
            }
            a.wrapping_rem(b)
        }
        BinOp::UDiv => {
            if b == 0 {
                return Err(VmError::DivisionByZero {
                    func: func.to_owned(),
                });
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::URem => {
            if b == 0 {
                return Err(VmError::DivisionByZero {
                    func: func.to_owned(),
                });
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
    })
}

/// Shared comparison semantics (both engines call this).
#[inline(always)]
pub(crate) fn eval_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::SLt => a < b,
        CmpOp::SLe => a <= b,
        CmpOp::SGt => a > b,
        CmpOp::SGe => a >= b,
        CmpOp::ULt => (a as u64) < (b as u64),
        CmpOp::ULe => (a as u64) <= (b as u64),
        CmpOp::UGt => (a as u64) > (b as u64),
        CmpOp::UGe => (a as u64) >= (b as u64),
    }
}

/// Shared truncate-then-extend semantics (both engines call this).
#[inline(always)]
pub(crate) fn ext_value(v: i64, width: Width, signed: bool) -> i64 {
    match (width, signed) {
        (Width::W1, true) => v as i8 as i64,
        (Width::W1, false) => v as u8 as i64,
        (Width::W2, true) => v as i16 as i64,
        (Width::W2, false) => v as u16 as i64,
        (Width::W4, true) => v as i32 as i64,
        (Width::W4, false) => v as u32 as i64,
        (Width::W8, _) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_value_truncates_and_extends() {
        assert_eq!(ext_value(0x1ff, Width::W1, false), 0xff);
        assert_eq!(ext_value(0x1ff, Width::W1, true), -1);
        assert_eq!(ext_value(-1, Width::W4, false), 0xffff_ffff);
        assert_eq!(ext_value(i64::MIN, Width::W8, true), i64::MIN);
    }

    #[test]
    fn bin_traps_on_division_by_zero() {
        assert!(eval_bin(BinOp::Div, 1, 0, "f").is_err());
        assert!(eval_bin(BinOp::URem, 1, 0, "f").is_err());
        assert_eq!(eval_bin(BinOp::Div, 7, 2, "f").unwrap(), 3);
        assert_eq!(eval_bin(BinOp::Div, i64::MIN, -1, "f").unwrap(), i64::MIN);
    }

    #[test]
    fn unsigned_ops_treat_operands_as_u64() {
        assert_eq!(eval_bin(BinOp::UDiv, -1, 2, "f").unwrap(), i64::MAX);
        assert_eq!(eval_bin(BinOp::UShr, -1, 63, "f").unwrap(), 1);
        assert!(eval_cmp(CmpOp::UGt, -1, 1));
        assert!(!eval_cmp(CmpOp::SGt, -1, 1));
    }

    #[test]
    fn shifts_mask_their_count() {
        assert_eq!(eval_bin(BinOp::Shl, 1, 64, "f").unwrap(), 1);
        assert_eq!(eval_bin(BinOp::Shl, 1, 65, "f").unwrap(), 2);
    }
}
