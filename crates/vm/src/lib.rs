//! # impact-vm — profiling IL interpreter
//!
//! Executes [`impact_il`] modules and produces the execution [`Profile`]
//! that drives the paper's profile-guided inline expansion: function entry
//! counts (node weights), call-site counts (arc weights), dynamic
//! intermediate-instruction counts (`IL's`), and control-transfer counts.
//!
//! The VM also implements the **external functions** of the paper's world
//! (§2.5): byte-stream I/O over in-memory files, a heap, program
//! arguments, and process exit — see [`Os`] and the `__`-prefixed builtins
//! in [`Builtin`]. Programs declare them with `extern`:
//!
//! ```c
//! extern int  __fgetc(int fd);
//! extern int  __fputc(int c, int fd);
//! extern int  __open(char *path);
//! extern long __malloc(long n);
//! extern void __exit(int code);
//! ```
//!
//! ## Example
//!
//! Compile and run a tiny program, then inspect its profile:
//!
//! ```
//! use impact_cfront::{compile, Source};
//! use impact_vm::{run, VmConfig};
//!
//! let module = compile(&[Source::new(
//!     "t.c",
//!     "int triple(int x) { return 3 * x; }\n\
//!      int main() { return triple(5) + triple(9); }",
//! )])
//! .unwrap();
//! let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
//! assert_eq!(out.exit_code, 42);
//! // `triple` was entered twice: its node weight is 2.
//! let triple = module.func_by_name("triple").unwrap();
//! assert_eq!(out.profile.func_weight(triple), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytecode;
mod error;
mod exec;
mod fault;
mod icache;
mod interp;
mod memory;
mod os;
mod profile;

pub use error::VmError;
pub use fault::FaultPlan;
pub use icache::{IcacheConfig, IcacheSim, IcacheStats};
pub use interp::{run, Engine, RunOutcome, VmConfig};
pub use memory::{Memory, FUNC_BASE};
pub use os::{Builtin, BuiltinOutcome, NamedFile, Os};
pub use profile::{fnv1a64, FlowResidual, ProfTarget, Profile};

use impact_il::Module;

/// Profiles a module over many `(inputs, args)` runs, returning the merged
/// profile and each run's outcome.
///
/// This is the paper's profiling step (§3.1): the program is executed on a
/// spectrum of representative inputs and the statistics are accumulated.
///
/// # Errors
///
/// Fails on the first run that traps.
pub fn profile_runs(
    module: &Module,
    runs: &[(Vec<NamedFile>, Vec<String>)],
    config: &VmConfig,
) -> Result<(Profile, Vec<RunOutcome>), VmError> {
    let mut merged = Profile::for_module(module);
    let mut outcomes = Vec::with_capacity(runs.len());
    for (inputs, args) in runs {
        let out = run(module, inputs.clone(), args.clone(), config)?;
        merged.merge(&out.profile);
        outcomes.push(out);
    }
    Ok((merged, outcomes))
}
