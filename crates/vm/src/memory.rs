//! Flat byte-addressable memory with globals, heap, and stack segments.
//!
//! Layout (low → high): a trapping null page, the module's globals, the
//! bump-allocated heap, and the downward-growing control stack at the top.
//! Function "addresses" live in a disjoint high range so that function
//! pointers are ordinary 64-bit values yet can never alias data.

use impact_il::{FuncId, GlobalId, Module, Width};

use crate::error::VmError;

/// Base of the synthetic function-address range. `FUNC_BASE + id` is the
/// runtime value of `&func`.
pub const FUNC_BASE: u64 = 0x4000_0000_0000_0000;

/// Size of the unmapped page at address zero.
const NULL_PAGE: u64 = 4096;

/// The VM's memory.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    globals_base: u64,
    global_addrs: Vec<u64>,
    heap_base: u64,
    heap_ptr: u64,
    heap_end: u64,
    stack_top: u64,
    /// Total bytes handed out by `malloc` (after rounding).
    allocated: u64,
    /// Optional allocation quota, independent of the segment size: total
    /// `malloc`'d bytes may not exceed this even when the segment itself
    /// still has room. Lets a supervisor bound a job's heap without
    /// re-laying-out (or shrinking the backing store of) the segment.
    quota: Option<u64>,
}

impl Memory {
    /// Lays out `module`'s globals and reserves `heap_size` and
    /// `stack_size` bytes. Applies global initializers, including
    /// function-pointer relocations.
    pub fn new(module: &Module, heap_size: u64, stack_size: u64) -> Self {
        let globals_base = NULL_PAGE;
        let mut cursor = globals_base;
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let align = g.align.max(1);
            cursor = cursor.next_multiple_of(align);
            global_addrs.push(cursor);
            cursor += g.size.max(1);
        }
        let heap_base = cursor.next_multiple_of(16);
        let heap_end = heap_base + heap_size;
        let stack_top = heap_end + stack_size;
        let mut mem = Memory {
            bytes: vec![0; stack_top as usize],
            globals_base,
            global_addrs,
            heap_base,
            heap_ptr: heap_base,
            heap_end,
            stack_top,
            allocated: 0,
            quota: None,
        };
        for (g, &addr) in module.globals.iter().zip(&mem.global_addrs.clone()) {
            mem.bytes[addr as usize..addr as usize + g.init.len()].copy_from_slice(&g.init);
            for &(off, func) in &g.func_relocs {
                let v = FUNC_BASE + func.0 as u64;
                mem.bytes[(addr + off) as usize..(addr + off + 8) as usize]
                    .copy_from_slice(&v.to_le_bytes());
            }
        }
        mem
    }

    /// The runtime address of a global.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range for the module this memory was built
    /// from.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_addrs[g.index()]
    }

    /// Lowest stack address (the stack may not grow below this).
    pub fn stack_limit(&self) -> u64 {
        self.heap_end
    }

    /// Highest stack address (initial stack pointer).
    pub fn stack_top(&self) -> u64 {
        self.stack_top
    }

    /// Base address of the globals segment (for diagnostics).
    pub fn globals_base(&self) -> u64 {
        self.globals_base
    }

    /// Base address of the heap segment (for diagnostics).
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    #[inline]
    fn check(&self, addr: u64, len: u64, func: &str) -> Result<usize, VmError> {
        if addr < NULL_PAGE || addr.saturating_add(len) > self.stack_top {
            return Err(VmError::OutOfBounds {
                addr,
                func: func.to_owned(),
            });
        }
        Ok(addr as usize)
    }

    /// Loads `width` bytes at `addr`, extending to 64 bits.
    #[inline]
    pub fn load(&self, addr: u64, width: Width, signed: bool, func: &str) -> Result<i64, VmError> {
        let a = self.check(addr, width.bytes(), func)?;
        let v = match width {
            Width::W1 => {
                let b = self.bytes[a];
                if signed {
                    b as i8 as i64
                } else {
                    b as i64
                }
            }
            Width::W2 => {
                let b = u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]);
                if signed {
                    b as i16 as i64
                } else {
                    b as i64
                }
            }
            Width::W4 => {
                let b = u32::from_le_bytes(self.bytes[a..a + 4].try_into().expect("4 bytes"));
                if signed {
                    b as i32 as i64
                } else {
                    b as i64
                }
            }
            Width::W8 => i64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("8 bytes")),
        };
        Ok(v)
    }

    /// Stores the low `width` bytes of `value` at `addr`.
    #[inline]
    pub fn store(
        &mut self,
        addr: u64,
        value: i64,
        width: Width,
        func: &str,
    ) -> Result<(), VmError> {
        let a = self.check(addr, width.bytes(), func)?;
        let le = value.to_le_bytes();
        self.bytes[a..a + width.bytes() as usize].copy_from_slice(&le[..width.bytes() as usize]);
        Ok(())
    }

    /// Reads a NUL-terminated string (capped at 1 MiB to bound damage from
    /// wild pointers).
    pub fn read_cstr(&self, addr: u64, func: &str) -> Result<Vec<u8>, VmError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.load(a, Width::W1, false, func)? as u8;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            if out.len() > 1 << 20 {
                return Err(VmError::OutOfBounds {
                    addr: a,
                    func: func.to_owned(),
                });
            }
            a += 1;
        }
    }

    /// Writes `bytes` plus a terminating NUL at `addr`.
    pub fn write_cstr(&mut self, addr: u64, bytes: &[u8], func: &str) -> Result<(), VmError> {
        let a = self.check(addr, bytes.len() as u64 + 1, func)?;
        self.bytes[a..a + bytes.len()].copy_from_slice(bytes);
        self.bytes[a + bytes.len()] = 0;
        Ok(())
    }

    /// Caps total `malloc`'d bytes at `bytes` (the resource governor's
    /// `--mem-limit`). Allocations beyond the quota trap with
    /// [`VmError::OutOfMemory`] exactly like segment exhaustion, so the
    /// out-of-memory path is reachable organically, not only via the
    /// `vm:oom` fault point.
    pub fn set_quota(&mut self, bytes: u64) {
        self.quota = Some(bytes);
    }

    /// Total bytes handed out by `malloc` so far (after the allocator's
    /// 16-byte rounding) — a resource counter for crash reports.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Bump-allocates `size` bytes (16-byte aligned). A `size` of zero
    /// allocates 16 bytes so every allocation has a distinct address.
    pub fn malloc(&mut self, size: u64) -> Result<u64, VmError> {
        let size = size.max(1).next_multiple_of(16);
        let over_quota = self
            .quota
            .is_some_and(|q| self.allocated.saturating_add(size) > q);
        if over_quota || self.heap_ptr + size > self.heap_end {
            return Err(VmError::OutOfMemory {
                requested: size,
                // Attributed by the builtin layer, which knows the caller.
                func: String::new(),
            });
        }
        let addr = self.heap_ptr;
        self.heap_ptr += size;
        self.allocated += size;
        Ok(addr)
    }

    /// Frees an allocation. The bump allocator makes this a no-op, which is
    /// sufficient for the benchmark programs (documented substitution for a
    /// real allocator — allocation *cost* is what the profile needs, and
    /// that is on the call, not the reuse).
    pub fn free(&mut self, _addr: u64) {}

    /// Decodes a function-pointer value into a [`FuncId`].
    pub fn decode_func_ptr(value: i64, num_funcs: usize, func: &str) -> Result<FuncId, VmError> {
        let v = value as u64;
        if v < FUNC_BASE || (v - FUNC_BASE) as usize >= num_funcs {
            return Err(VmError::BadFunctionPointer {
                value: v,
                func: func.to_owned(),
            });
        }
        Ok(FuncId((v - FUNC_BASE) as u32))
    }

    /// Encodes a [`FuncId`] as a runtime function-pointer value.
    pub fn encode_func_ptr(f: FuncId) -> i64 {
        (FUNC_BASE + f.0 as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{Function, Global};

    fn module_with_globals() -> Module {
        let mut m = Module::new();
        m.add_function(Function::new("main", 0));
        m.add_global(Global::with_bytes("msg", b"hi\0".to_vec(), 1));
        let mut tbl = Global::zeroed("tbl", 16, 8);
        tbl.func_relocs.push((8, FuncId(0)));
        m.add_global(tbl);
        m
    }

    #[test]
    fn globals_are_laid_out_and_initialized() {
        let m = module_with_globals();
        let mem = Memory::new(&m, 1024, 1024);
        let msg = mem.global_addr(GlobalId(0));
        assert!(msg >= 4096);
        assert_eq!(mem.load(msg, Width::W1, false, "t").unwrap(), b'h' as i64);
        let tbl = mem.global_addr(GlobalId(1));
        assert_eq!(tbl % 8, 0);
        assert_eq!(
            mem.load(tbl + 8, Width::W8, true, "t").unwrap(),
            Memory::encode_func_ptr(FuncId(0))
        );
    }

    #[test]
    fn null_page_traps() {
        let m = module_with_globals();
        let mem = Memory::new(&m, 1024, 1024);
        assert!(matches!(
            mem.load(0, Width::W1, false, "t"),
            Err(VmError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.load(4095, Width::W8, false, "t"),
            Err(VmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn load_store_round_trip_all_widths() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m, 4096, 1024);
        let a = mem.malloc(64).unwrap();
        for (w, v) in [
            (Width::W1, -5i64),
            (Width::W2, -300),
            (Width::W4, -70000),
            (Width::W8, i64::MIN + 3),
        ] {
            mem.store(a, v, w, "t").unwrap();
            assert_eq!(mem.load(a, w, true, "t").unwrap(), v);
        }
        // Zero-extension.
        mem.store(a, -1, Width::W1, "t").unwrap();
        assert_eq!(mem.load(a, Width::W1, false, "t").unwrap(), 255);
    }

    #[test]
    fn malloc_bumps_and_exhausts() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m, 64, 1024);
        let a = mem.malloc(16).unwrap();
        let b = mem.malloc(16).unwrap();
        assert_ne!(a, b);
        assert!(matches!(
            mem.malloc(1 << 20),
            Err(VmError::OutOfMemory { .. })
        ));
        mem.free(a); // no-op, must not panic
    }

    #[test]
    fn quota_traps_before_segment_exhaustion() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m, 1 << 16, 1024);
        mem.set_quota(64);
        let a = mem.malloc(48).unwrap();
        assert_ne!(a, 0);
        assert_eq!(mem.allocated(), 48);
        // 48 + 32 > 64: the quota fires even though the 64 KiB segment
        // has plenty of room left.
        assert!(matches!(mem.malloc(32), Err(VmError::OutOfMemory { .. })));
        // Exactly up to the quota is still fine.
        assert_eq!(mem.malloc(16).unwrap() % 16, 0);
        assert_eq!(mem.allocated(), 64);
        assert!(mem.malloc(1).is_err());
    }

    #[test]
    fn cstr_round_trip() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m, 4096, 1024);
        let a = mem.malloc(32).unwrap();
        mem.write_cstr(a, b"hello", "t").unwrap();
        assert_eq!(mem.read_cstr(a, "t").unwrap(), b"hello".to_vec());
    }

    #[test]
    fn func_ptr_encode_decode() {
        let f = FuncId(3);
        let v = Memory::encode_func_ptr(f);
        assert_eq!(Memory::decode_func_ptr(v, 5, "t").unwrap(), f);
        assert!(Memory::decode_func_ptr(v, 2, "t").is_err());
        assert!(Memory::decode_func_ptr(12345, 5, "t").is_err());
    }

    #[test]
    fn stack_region_is_above_heap() {
        let m = module_with_globals();
        let mem = Memory::new(&m, 1024, 2048);
        assert_eq!(mem.stack_top() - mem.stack_limit(), 2048);
        assert!(mem.stack_limit() > mem.globals_base());
    }
}
