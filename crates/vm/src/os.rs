//! The builtin "OS layer" — implementations of the external functions.
//!
//! In the paper, system calls and closed library routines are *external
//! functions*: the compiler cannot see their bodies, cannot inline them,
//! and must assume the worst about what they call (§2.5). This module is
//! the runtime behind those externs: byte-stream file I/O over in-memory
//! named files, program arguments, a heap, and process exit.

use impact_il::{ExternDecl, Module};

use crate::error::VmError;
use crate::fault::FaultPlan;
use crate::memory::Memory;

/// An in-memory input file handed to a program run (the "representative
/// input" of the paper's profiling methodology).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedFile {
    /// Path the program opens it by.
    pub name: String,
    /// Contents.
    pub bytes: Vec<u8>,
}

impl NamedFile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, bytes: impl Into<Vec<u8>>) -> Self {
        NamedFile {
            name: name.into(),
            bytes: bytes.into(),
        }
    }
}

/// The fixed set of VM builtins an `extern` declaration may bind to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// `int __open(char *path)` — open a named input for reading.
    Open,
    /// `int __creat(char *path)` — create a named output for writing.
    Creat,
    /// `int __close(int fd)`.
    Close,
    /// `int __fgetc(int fd)` — next byte or -1 at end of file.
    Fgetc,
    /// `int __fputc(int c, int fd)` — write one byte; returns `c`.
    Fputc,
    /// `int __fread(int fd, char *buf, int n)` — block read, like
    /// `read(2)`; returns the number of bytes read (0 at end of file).
    Fread,
    /// `int __fwrite(int fd, char *buf, int n)` — block write; returns
    /// `n`.
    Fwrite,
    /// `int __nargs(void)` — number of program arguments.
    Nargs,
    /// `int __arg(int i, char *buf)` — copy argument `i` (NUL-terminated)
    /// into `buf`; returns its length, or -1 if out of range.
    Arg,
    /// `int __ninputs(void)` — number of input files.
    Ninputs,
    /// `int __input_name(int i, char *buf)` — copy the name of input `i`;
    /// returns its length, or -1 if out of range.
    InputName,
    /// `long __malloc(long size)`.
    Malloc,
    /// `void __free(long ptr)`.
    Free,
    /// `void __exit(int code)`.
    Exit,
    /// `void __abort(void)`.
    Abort,
    /// `void __putn(long n)` — write `n` in decimal to stdout.
    Putn,
}

impl Builtin {
    /// Resolves an extern declaration to a builtin, checking the
    /// signature.
    pub fn resolve(decl: &ExternDecl) -> Result<Builtin, VmError> {
        let (b, params, has_ret) = match decl.name.as_str() {
            "__open" => (Builtin::Open, 1, true),
            "__creat" => (Builtin::Creat, 1, true),
            "__close" => (Builtin::Close, 1, true),
            "__fgetc" => (Builtin::Fgetc, 1, true),
            "__fputc" => (Builtin::Fputc, 2, true),
            "__fread" => (Builtin::Fread, 3, true),
            "__fwrite" => (Builtin::Fwrite, 3, true),
            "__nargs" => (Builtin::Nargs, 0, true),
            "__arg" => (Builtin::Arg, 2, true),
            "__ninputs" => (Builtin::Ninputs, 0, true),
            "__input_name" => (Builtin::InputName, 2, true),
            "__malloc" => (Builtin::Malloc, 1, true),
            "__free" => (Builtin::Free, 1, false),
            "__exit" => (Builtin::Exit, 1, false),
            "__abort" => (Builtin::Abort, 0, false),
            "__putn" => (Builtin::Putn, 1, false),
            _ => {
                return Err(VmError::UnknownExtern {
                    name: decl.name.clone(),
                    func: String::new(),
                })
            }
        };
        if decl.num_params != params || decl.has_ret != has_ret {
            return Err(VmError::BadBuiltinCall {
                name: decl.name.clone(),
                reason: format!(
                    "declaration has {} params (ret: {}), builtin wants {} (ret: {})",
                    decl.num_params, decl.has_ret, params, has_ret
                ),
                func: String::new(),
            });
        }
        Ok(b)
    }
}

/// What a builtin call did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuiltinOutcome {
    /// Normal completion with an optional return value.
    Value(Option<i64>),
    /// The program requested termination with this exit code.
    Exit(i64),
}

#[derive(Clone, Debug)]
enum OpenFile {
    Read { input: usize, pos: usize },
    Write { name: String, buf: Vec<u8> },
    Closed,
}

/// Per-run OS state: the file table, output buffers, and arguments.
#[derive(Clone, Debug)]
pub struct Os {
    inputs: Vec<NamedFile>,
    args: Vec<String>,
    fds: Vec<OpenFile>,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    /// Contents of written files whose fds were closed (a close must not
    /// lose the data).
    completed: Vec<(String, Vec<u8>)>,
    /// Armed failpoints (`vm:oom`, ...); empty by default.
    fault: FaultPlan,
}

impl Os {
    /// Creates the OS state for one run. If an input is named `stdin` it
    /// is pre-opened as fd 0.
    pub fn new(inputs: Vec<NamedFile>, args: Vec<String>) -> Self {
        let stdin_idx = inputs.iter().position(|f| f.name == "stdin");
        let fds = vec![
            match stdin_idx {
                Some(i) => OpenFile::Read { input: i, pos: 0 },
                None => OpenFile::Closed,
            },
            OpenFile::Write {
                name: "stdout".into(),
                buf: Vec::new(),
            },
            OpenFile::Write {
                name: "stderr".into(),
                buf: Vec::new(),
            },
        ];
        Os {
            inputs,
            args,
            fds,
            stdout: Vec::new(),
            stderr: Vec::new(),
            completed: Vec::new(),
            fault: FaultPlan::default(),
        }
    }

    /// Arms this OS layer with a fault plan (see [`FaultPlan`]); the
    /// interpreter threads [`crate::VmConfig::fault`] through here.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Appends finished write-file contents to the completed list,
    /// merging with an earlier close of the same name (a reopened file
    /// appends, which is all the benchmarks need).
    fn retire(&mut self, name: String, buf: Vec<u8>) {
        if name == "stdout" || name == "stderr" || buf.is_empty() {
            return;
        }
        if let Some((_, existing)) = self.completed.iter_mut().find(|(n, _)| *n == name) {
            existing.extend_from_slice(&buf);
        } else {
            self.completed.push((name, buf));
        }
    }

    /// Executes one builtin.
    pub fn call(
        &mut self,
        b: Builtin,
        args: &[i64],
        mem: &mut Memory,
        func: &str,
    ) -> Result<BuiltinOutcome, VmError> {
        use BuiltinOutcome::Value;
        Ok(match b {
            Builtin::Open => {
                let path = mem.read_cstr(args[0] as u64, func)?;
                let path = String::from_utf8_lossy(&path).into_owned();
                match self.inputs.iter().position(|f| f.name == path) {
                    Some(i) => {
                        let fd = self.alloc_fd(OpenFile::Read { input: i, pos: 0 });
                        Value(Some(fd))
                    }
                    None => Value(Some(-1)),
                }
            }
            Builtin::Creat => {
                let path = mem.read_cstr(args[0] as u64, func)?;
                let name = String::from_utf8_lossy(&path).into_owned();
                let fd = self.alloc_fd(OpenFile::Write {
                    name,
                    buf: Vec::new(),
                });
                Value(Some(fd))
            }
            Builtin::Close => {
                let fd = args[0];
                match usize::try_from(fd).ok().and_then(|i| self.fds.get_mut(i)) {
                    Some(slot) if !matches!(slot, OpenFile::Closed) => {
                        let old = std::mem::replace(slot, OpenFile::Closed);
                        if let OpenFile::Write { name, buf } = old {
                            self.retire(name, buf);
                        }
                        Value(Some(0))
                    }
                    _ => Value(Some(-1)),
                }
            }
            Builtin::Fgetc => {
                let fd = args[0] as usize;
                let inputs = &self.inputs;
                let v = match self.fds.get_mut(fd) {
                    Some(OpenFile::Read { input, pos }) => match inputs[*input].bytes.get(*pos) {
                        Some(&b) => {
                            *pos += 1;
                            b as i64
                        }
                        None => -1,
                    },
                    _ => -1,
                };
                Value(Some(v))
            }
            Builtin::Fputc => {
                let c = args[0] as u8;
                let fd = args[1] as usize;
                match self.fds.get_mut(fd) {
                    Some(OpenFile::Write { name, buf }) => {
                        if name == "stdout" {
                            self.stdout.push(c);
                        } else if name == "stderr" {
                            self.stderr.push(c);
                        } else {
                            buf.push(c);
                        }
                        Value(Some(c as i64))
                    }
                    _ => Value(Some(-1)),
                }
            }
            Builtin::Fread => {
                let fd = args[0] as usize;
                let buf = args[1] as u64;
                let want = args[2].max(0) as usize;
                let chunk: Vec<u8> = match self.fds.get_mut(fd) {
                    Some(OpenFile::Read { input, pos }) => {
                        let bytes = &self.inputs[*input].bytes;
                        let end = (*pos + want).min(bytes.len());
                        let c = bytes[*pos..end].to_vec();
                        *pos = end;
                        c
                    }
                    _ => Vec::new(),
                };
                for (i, &b) in chunk.iter().enumerate() {
                    mem.store(buf + i as u64, b as i64, impact_il::Width::W1, func)?;
                }
                Value(Some(chunk.len() as i64))
            }
            Builtin::Fwrite => {
                let fd = args[0] as usize;
                let buf = args[1] as u64;
                let n = args[2].max(0) as usize;
                let mut bytes = Vec::with_capacity(n);
                for i in 0..n {
                    bytes.push(mem.load(buf + i as u64, impact_il::Width::W1, false, func)? as u8);
                }
                match self.fds.get_mut(fd) {
                    Some(OpenFile::Write { name, buf: wbuf }) => {
                        if name == "stdout" {
                            self.stdout.extend_from_slice(&bytes);
                        } else if name == "stderr" {
                            self.stderr.extend_from_slice(&bytes);
                        } else {
                            wbuf.extend_from_slice(&bytes);
                        }
                        Value(Some(n as i64))
                    }
                    _ => Value(Some(-1)),
                }
            }
            Builtin::Nargs => Value(Some(self.args.len() as i64)),
            Builtin::Arg => {
                let i = args[0];
                match usize::try_from(i).ok().and_then(|i| self.args.get(i)) {
                    Some(a) => {
                        let bytes = a.as_bytes().to_vec();
                        mem.write_cstr(args[1] as u64, &bytes, func)?;
                        Value(Some(bytes.len() as i64))
                    }
                    None => Value(Some(-1)),
                }
            }
            Builtin::Ninputs => Value(Some(self.inputs.len() as i64)),
            Builtin::InputName => {
                let i = args[0];
                match usize::try_from(i).ok().and_then(|i| self.inputs.get(i)) {
                    Some(f) => {
                        let bytes = f.name.as_bytes().to_vec();
                        mem.write_cstr(args[1] as u64, &bytes, func)?;
                        Value(Some(bytes.len() as i64))
                    }
                    None => Value(Some(-1)),
                }
            }
            Builtin::Malloc => {
                let size = args[0].max(0) as u64;
                if self.fault.should_fail("vm:oom") {
                    return Err(VmError::OutOfMemory {
                        requested: size,
                        func: func.to_owned(),
                    });
                }
                match mem.malloc(size) {
                    Ok(addr) => Value(Some(addr as i64)),
                    // C convention: allocation failure returns NULL.
                    Err(VmError::OutOfMemory { .. }) => Value(Some(0)),
                    Err(e) => return Err(e),
                }
            }
            Builtin::Free => {
                mem.free(args[0] as u64);
                Value(None)
            }
            Builtin::Exit => BuiltinOutcome::Exit(args[0]),
            Builtin::Abort => {
                return Err(VmError::Abort {
                    func: func.to_owned(),
                })
            }
            Builtin::Putn => {
                let s = args[0].to_string();
                self.stdout.extend_from_slice(s.as_bytes());
                Value(None)
            }
        })
    }

    fn alloc_fd(&mut self, f: OpenFile) -> i64 {
        // Reuse the lowest closed slot above the standard three.
        for (i, slot) in self.fds.iter_mut().enumerate().skip(3) {
            if matches!(slot, OpenFile::Closed) {
                *slot = f;
                return i as i64;
            }
        }
        self.fds.push(f);
        (self.fds.len() - 1) as i64
    }

    /// Everything written to stdout so far.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Everything written to stderr so far.
    pub fn stderr(&self) -> &[u8] {
        &self.stderr
    }

    /// Consumes the OS state, returning `(stdout, stderr, named files
    /// written via __creat)` — both files closed during the run and files
    /// still open at exit.
    #[allow(clippy::type_complexity)]
    pub fn into_outputs(mut self) -> (Vec<u8>, Vec<u8>, Vec<(String, Vec<u8>)>) {
        let open_writes: Vec<(String, Vec<u8>)> = std::mem::take(&mut self.fds)
            .into_iter()
            .filter_map(|f| match f {
                OpenFile::Write { name, buf } => Some((name, buf)),
                _ => None,
            })
            .collect();
        for (name, buf) in open_writes {
            self.retire(name, buf);
        }
        (self.stdout, self.stderr, self.completed)
    }

    /// Resolves every extern in `module` to a builtin, in [`impact_il::ExternId`]
    /// order.
    pub fn resolve_externs(module: &Module) -> Result<Vec<Builtin>, VmError> {
        module.externs.iter().map(Builtin::resolve).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::{Function, Global};

    fn mem() -> Memory {
        let mut m = Module::new();
        m.add_function(Function::new("main", 0));
        m.add_global(Global::zeroed("scratch", 256, 8));
        Memory::new(&m, 4096, 4096)
    }

    #[test]
    fn open_read_eof_cycle() {
        let mut os = Os::new(vec![NamedFile::new("f.txt", b"ab".to_vec())], vec![]);
        let mut memory = mem();
        let path = memory.global_addr(impact_il::GlobalId(0));
        memory.write_cstr(path, b"f.txt", "t").unwrap();
        let BuiltinOutcome::Value(Some(fd)) = os
            .call(Builtin::Open, &[path as i64], &mut memory, "t")
            .unwrap()
        else {
            panic!()
        };
        assert!(fd >= 3);
        let mut read = Vec::new();
        loop {
            let BuiltinOutcome::Value(Some(c)) =
                os.call(Builtin::Fgetc, &[fd], &mut memory, "t").unwrap()
            else {
                panic!()
            };
            if c == -1 {
                break;
            }
            read.push(c as u8);
        }
        assert_eq!(read, b"ab");
    }

    #[test]
    fn open_missing_file_returns_minus_one() {
        let mut os = Os::new(vec![], vec![]);
        let mut memory = mem();
        let path = memory.global_addr(impact_il::GlobalId(0));
        memory.write_cstr(path, b"nope", "t").unwrap();
        assert_eq!(
            os.call(Builtin::Open, &[path as i64], &mut memory, "t")
                .unwrap(),
            BuiltinOutcome::Value(Some(-1))
        );
    }

    #[test]
    fn stdin_is_preopened_when_named() {
        let mut os = Os::new(vec![NamedFile::new("stdin", b"x".to_vec())], vec![]);
        let mut memory = mem();
        let BuiltinOutcome::Value(Some(c)) =
            os.call(Builtin::Fgetc, &[0], &mut memory, "t").unwrap()
        else {
            panic!()
        };
        assert_eq!(c, b'x' as i64);
    }

    #[test]
    fn stdout_and_created_files_are_captured() {
        let mut os = Os::new(vec![], vec![]);
        let mut memory = mem();
        os.call(Builtin::Fputc, &[b'A' as i64, 1], &mut memory, "t")
            .unwrap();
        os.call(Builtin::Putn, &[-42], &mut memory, "t").unwrap();
        let path = memory.global_addr(impact_il::GlobalId(0));
        memory.write_cstr(path, b"out.bin", "t").unwrap();
        let BuiltinOutcome::Value(Some(fd)) = os
            .call(Builtin::Creat, &[path as i64], &mut memory, "t")
            .unwrap()
        else {
            panic!()
        };
        os.call(Builtin::Fputc, &[7, fd], &mut memory, "t").unwrap();
        let (stdout, stderr, files) = os.into_outputs();
        assert_eq!(stdout, b"A-42".to_vec());
        assert!(stderr.is_empty());
        assert_eq!(files, vec![("out.bin".to_string(), vec![7u8])]);
    }

    #[test]
    fn args_are_copied_into_memory() {
        let mut os = Os::new(vec![], vec!["-v".into(), "pat".into()]);
        let mut memory = mem();
        assert_eq!(
            os.call(Builtin::Nargs, &[], &mut memory, "t").unwrap(),
            BuiltinOutcome::Value(Some(2))
        );
        let buf = memory.global_addr(impact_il::GlobalId(0));
        let BuiltinOutcome::Value(Some(len)) = os
            .call(Builtin::Arg, &[1, buf as i64], &mut memory, "t")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(len, 3);
        assert_eq!(memory.read_cstr(buf, "t").unwrap(), b"pat".to_vec());
        assert_eq!(
            os.call(Builtin::Arg, &[5, buf as i64], &mut memory, "t")
                .unwrap(),
            BuiltinOutcome::Value(Some(-1))
        );
    }

    #[test]
    fn exit_and_abort() {
        let mut os = Os::new(vec![], vec![]);
        let mut memory = mem();
        assert_eq!(
            os.call(Builtin::Exit, &[3], &mut memory, "t").unwrap(),
            BuiltinOutcome::Exit(3)
        );
        assert_eq!(
            os.call(Builtin::Abort, &[], &mut memory, "t"),
            Err(VmError::Abort { func: "t".into() })
        );
    }

    #[test]
    fn close_reuses_fd_slots() {
        let mut os = Os::new(
            vec![NamedFile::new("a", vec![]), NamedFile::new("b", vec![])],
            vec![],
        );
        let mut memory = mem();
        let path = memory.global_addr(impact_il::GlobalId(0));
        memory.write_cstr(path, b"a", "t").unwrap();
        let BuiltinOutcome::Value(Some(fd1)) = os
            .call(Builtin::Open, &[path as i64], &mut memory, "t")
            .unwrap()
        else {
            panic!()
        };
        os.call(Builtin::Close, &[fd1], &mut memory, "t").unwrap();
        memory.write_cstr(path, b"b", "t").unwrap();
        let BuiltinOutcome::Value(Some(fd2)) = os
            .call(Builtin::Open, &[path as i64], &mut memory, "t")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(fd1, fd2);
    }

    #[test]
    fn resolve_checks_signatures() {
        let ok = ExternDecl {
            name: "__fgetc".into(),
            num_params: 1,
            has_ret: true,
        };
        assert_eq!(Builtin::resolve(&ok).unwrap(), Builtin::Fgetc);
        let bad_sig = ExternDecl {
            name: "__fgetc".into(),
            num_params: 2,
            has_ret: true,
        };
        assert!(matches!(
            Builtin::resolve(&bad_sig),
            Err(VmError::BadBuiltinCall { .. })
        ));
        let unknown = ExternDecl {
            name: "__mystery".into(),
            num_params: 0,
            has_ret: false,
        };
        assert!(matches!(
            Builtin::resolve(&unknown),
            Err(VmError::UnknownExtern { .. })
        ));
    }

    #[test]
    fn fgetc_on_bad_fd_returns_eof() {
        let mut os = Os::new(vec![], vec![]);
        let mut memory = mem();
        assert_eq!(
            os.call(Builtin::Fgetc, &[99], &mut memory, "t").unwrap(),
            BuiltinOutcome::Value(Some(-1))
        );
        // fd 0 with no stdin input is closed.
        assert_eq!(
            os.call(Builtin::Fgetc, &[0], &mut memory, "t").unwrap(),
            BuiltinOutcome::Value(Some(-1))
        );
    }
}
