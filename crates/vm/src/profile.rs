//! Execution profiles — the paper's "Profiler to C Compiler interface".
//!
//! The profiler records, per run: executed intermediate-instruction counts,
//! intra-function control transfers, function entry counts (node weights),
//! and per-call-site invocation counts (arc weights). Profiles from many
//! runs are merged and averaged, matching §3.1: "the profiler accumulates
//! the average run-time statistics over many runs of a program".

use std::collections::HashMap;

use impact_il::{CallSiteId, Callee, ExternId, FuncId, Module};

/// A call target as recorded by the profiler (the callee side of an arc).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProfTarget {
    /// A user function.
    Func(FuncId),
    /// An external function (VM builtin).
    Ext(ExternId),
}

/// Aggregated execution statistics for one or more runs of a module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Number of runs merged into this profile.
    pub runs: u32,
    /// Total executed IL instructions (instructions + terminators), the
    /// paper's `IL's` unit.
    pub il_executed: u64,
    /// Executed intra-function control transfers (jumps and branches) —
    /// the paper's `control` column (excludes calls/returns).
    pub control_transfers: u64,
    /// Executed call instructions (user + external + indirect).
    pub calls: u64,
    /// Executed returns from user functions.
    pub returns: u64,
    /// High-water mark of control stack usage in bytes.
    pub max_stack_bytes: u64,
    /// Function entry counts, indexed by [`FuncId`] — the node weights.
    pub func_entries: Vec<u64>,
    /// Call-site execution counts, indexed by raw [`CallSiteId`] — the arc
    /// weights.
    pub site_counts: Vec<u64>,
    /// For call-through-pointer sites: the distribution of actual targets.
    pub site_targets: HashMap<CallSiteId, HashMap<ProfTarget, u64>>,
    /// Per-function, per-block execution counts (for branch statistics).
    pub block_counts: Vec<Vec<u64>>,
    /// Per-function, per-block count of `Branch` terminators that took
    /// the *then* edge — §3.1: "the frequencies of each of the possible
    /// directions of branch instructions". The not-taken count is the
    /// number of times the terminator executed minus this.
    pub branch_taken: Vec<Vec<u64>>,
}

impl Profile {
    /// Creates an all-zero profile shaped for `module`.
    pub fn for_module(module: &Module) -> Self {
        Profile {
            runs: 0,
            il_executed: 0,
            control_transfers: 0,
            calls: 0,
            returns: 0,
            max_stack_bytes: 0,
            func_entries: vec![0; module.functions.len()],
            site_counts: vec![0; module.call_site_limit() as usize],
            site_targets: HashMap::new(),
            block_counts: module
                .functions
                .iter()
                .map(|f| vec![0; f.blocks.len()])
                .collect(),
            branch_taken: module
                .functions
                .iter()
                .map(|f| vec![0; f.blocks.len()])
                .collect(),
        }
    }

    /// A synthetic "assume everything is hot" profile: every function
    /// entry and every call site gets `weight`, with one recorded run so
    /// averaging is a no-op. This is the graceful-degradation fallback
    /// when real profiling is unavailable (corrupt `--profile-in`, a
    /// trapping profiling run): threshold-based inlining still proceeds,
    /// it just cannot rank sites by measured frequency.
    pub fn assume_hot(module: &Module, weight: u64) -> Self {
        let mut p = Profile::for_module(module);
        p.runs = 1;
        for w in &mut p.func_entries {
            *w = weight;
        }
        for w in &mut p.site_counts {
            *w = weight;
        }
        p
    }

    /// Taken/not-taken counts for the branch terminating `block` of
    /// `func`, or `None` when out of range. `not_taken` is derived from
    /// how often the block's terminator executed.
    pub fn branch_directions(&self, func: FuncId, block: u32) -> Option<(u64, u64)> {
        let execs = *self.block_counts.get(func.index())?.get(block as usize)?;
        let taken = *self.branch_taken.get(func.index())?.get(block as usize)?;
        Some((taken, execs.saturating_sub(taken)))
    }

    /// The recorded entry count of a function (0 if out of range).
    pub fn func_weight(&self, f: FuncId) -> u64 {
        self.func_entries.get(f.index()).copied().unwrap_or(0)
    }

    /// The recorded execution count of a call site (0 if out of range).
    pub fn site_weight(&self, s: CallSiteId) -> u64 {
        self.site_counts.get(s.0 as usize).copied().unwrap_or(0)
    }

    /// Accumulates another profile into this one (element-wise sums; the
    /// stack high-water mark takes the max).
    ///
    /// # Panics
    ///
    /// Panics if the profiles were collected for differently shaped
    /// modules.
    pub fn merge(&mut self, other: &Profile) {
        assert_eq!(
            self.func_entries.len(),
            other.func_entries.len(),
            "profiles come from different modules"
        );
        self.runs += other.runs;
        self.il_executed += other.il_executed;
        self.control_transfers += other.control_transfers;
        self.calls += other.calls;
        self.returns += other.returns;
        self.max_stack_bytes = self.max_stack_bytes.max(other.max_stack_bytes);
        for (a, b) in self.func_entries.iter_mut().zip(&other.func_entries) {
            *a += b;
        }
        if self.site_counts.len() < other.site_counts.len() {
            self.site_counts.resize(other.site_counts.len(), 0);
        }
        for (i, b) in other.site_counts.iter().enumerate() {
            self.site_counts[i] += b;
        }
        for (site, targets) in &other.site_targets {
            let entry = self.site_targets.entry(*site).or_default();
            for (t, n) in targets {
                *entry.entry(*t).or_insert(0) += n;
            }
        }
        for (a, b) in self.block_counts.iter_mut().zip(&other.block_counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.branch_taken.iter_mut().zip(&other.branch_taken) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Returns the per-run average of this profile (integer division).
    ///
    /// Node and arc weights in the paper are per-typical-run counts; when
    /// several runs were merged the averaged profile is what drives inline
    /// decisions and the reported tables.
    pub fn averaged(&self) -> Profile {
        let n = u64::from(self.runs.max(1));
        Profile {
            runs: 1,
            il_executed: self.il_executed / n,
            control_transfers: self.control_transfers / n,
            calls: self.calls / n,
            returns: self.returns / n,
            max_stack_bytes: self.max_stack_bytes,
            func_entries: self.func_entries.iter().map(|v| v / n).collect(),
            site_counts: self.site_counts.iter().map(|v| v / n).collect(),
            site_targets: self
                .site_targets
                .iter()
                .map(|(s, ts)| (*s, ts.iter().map(|(t, v)| (*t, *v / n)).collect()))
                .collect(),
            block_counts: self
                .block_counts
                .iter()
                .map(|bs| bs.iter().map(|v| v / n).collect())
                .collect(),
            branch_taken: self
                .branch_taken
                .iter()
                .map(|bs| bs.iter().map(|v| v / n).collect())
                .collect(),
        }
    }

    /// Average executed IL instructions between dynamic calls — the
    /// paper's `IL's per call` metric (Table 4).
    pub fn ils_per_call(&self) -> u64 {
        self.il_executed
            .checked_div(self.calls)
            .unwrap_or(self.il_executed)
    }

    /// Average control transfers between dynamic calls — the paper's
    /// `CT's per call` metric (Table 4).
    pub fn cts_per_call(&self) -> u64 {
        self.control_transfers
            .checked_div(self.calls)
            .unwrap_or(self.control_transfers)
    }
}

// ----- flow-conservation introspection ------------------------------------

/// One violation of profile flow conservation: a function whose recorded
/// entry count (node weight) disagrees with the arc evidence feeding it.
/// See [`Profile::flow_residuals`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowResidual {
    /// The function whose counts disagree.
    pub func: FuncId,
    /// Recorded entry count (node weight).
    pub entries: u64,
    /// What the arcs predict: the sum of incoming recorded arc weights,
    /// plus one OS entry per run for `main`.
    pub expected: u64,
}

impl Profile {
    /// Sum of recorded incoming arc weights per function: direct sites
    /// contribute their [`Profile::site_weight`], pointer sites contribute
    /// their recorded per-target counts from `site_targets`. External
    /// callees receive nothing (they are not functions of the module).
    pub fn incoming_arc_weights(&self, module: &Module) -> Vec<u64> {
        let mut incoming = vec![0u64; module.functions.len()];
        for (_, site, callee) in module.all_call_sites() {
            match callee {
                Callee::Func(f) => incoming[f.index()] += self.site_weight(site),
                Callee::Reg(_) => {
                    if let Some(targets) = self.site_targets.get(&site) {
                        for (t, n) in targets {
                            if let ProfTarget::Func(f) = t {
                                incoming[f.index()] += n;
                            }
                        }
                    }
                }
                Callee::Ext(_) => {}
            }
        }
        incoming
    }

    /// The profiler's flow-conservation law: every entry of a function is
    /// either an incoming call recorded at some site or — for `main`
    /// only — the OS entry that starts a run. Returns every function
    /// where the law fails (empty on a conserving profile).
    ///
    /// Exact only on *merged* (unaveraged) profiles of completed runs:
    /// [`Profile::averaged`] integer-divides each counter independently,
    /// and a run that trapped mid-call may have recorded the site but not
    /// the entry.
    pub fn flow_residuals(&self, module: &Module) -> Vec<FlowResidual> {
        let incoming = self.incoming_arc_weights(module);
        let main = module.main_id();
        let mut out = Vec::new();
        for (i, &inc) in incoming.iter().enumerate() {
            let func = FuncId::from_index(i);
            let os_entries = if Some(func) == main {
                u64::from(self.runs)
            } else {
                0
            };
            let expected = inc + os_entries;
            let entries = self.func_weight(func);
            if entries != expected {
                out.push(FlowResidual {
                    func,
                    entries,
                    expected,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impact_il::Function;

    fn tiny_module() -> Module {
        let mut m = Module::new();
        m.add_function(Function::new("main", 0));
        m.add_function(Function::new("f", 0));
        let _ = m.fresh_call_site();
        let _ = m.fresh_call_site();
        m
    }

    #[test]
    fn for_module_shapes_tables() {
        let m = tiny_module();
        let p = Profile::for_module(&m);
        assert_eq!(p.func_entries.len(), 2);
        assert_eq!(p.site_counts.len(), 2);
        assert_eq!(p.block_counts.len(), 2);
    }

    #[test]
    fn merge_adds_counts_and_maxes_stack() {
        let m = tiny_module();
        let mut a = Profile::for_module(&m);
        a.runs = 1;
        a.il_executed = 100;
        a.max_stack_bytes = 64;
        a.func_entries[1] = 5;
        a.site_counts[0] = 7;
        let mut b = Profile::for_module(&m);
        b.runs = 1;
        b.il_executed = 50;
        b.max_stack_bytes = 128;
        b.func_entries[1] = 3;
        b.site_counts[0] = 1;
        b.site_targets
            .entry(CallSiteId(1))
            .or_default()
            .insert(ProfTarget::Func(FuncId(1)), 4);
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.il_executed, 150);
        assert_eq!(a.max_stack_bytes, 128);
        assert_eq!(a.func_entries[1], 8);
        assert_eq!(a.site_counts[0], 8);
        assert_eq!(
            a.site_targets[&CallSiteId(1)][&ProfTarget::Func(FuncId(1))],
            4
        );
    }

    #[test]
    fn averaged_divides_by_runs() {
        let m = tiny_module();
        let mut p = Profile::for_module(&m);
        p.runs = 4;
        p.il_executed = 100;
        p.calls = 8;
        p.func_entries[0] = 4;
        let avg = p.averaged();
        assert_eq!(avg.runs, 1);
        assert_eq!(avg.il_executed, 25);
        assert_eq!(avg.calls, 2);
        assert_eq!(avg.func_entries[0], 1);
    }

    #[test]
    fn per_call_metrics() {
        let m = tiny_module();
        let mut p = Profile::for_module(&m);
        p.il_executed = 1000;
        p.control_transfers = 100;
        p.calls = 10;
        assert_eq!(p.ils_per_call(), 100);
        assert_eq!(p.cts_per_call(), 10);
        p.calls = 0;
        assert_eq!(p.ils_per_call(), 1000);
    }

    #[test]
    #[should_panic(expected = "different modules")]
    fn merge_rejects_mismatched_shapes() {
        let m = tiny_module();
        let mut a = Profile::for_module(&m);
        let mut m2 = Module::new();
        m2.add_function(Function::new("main", 0));
        let b = Profile::for_module(&m2);
        a.merge(&b);
    }
}

#[cfg(test)]
mod flow_tests {
    use super::*;
    use crate::{run, VmConfig};
    use impact_cfront::{compile, Source};

    /// Direct, pointer, and external call sites in one program, plus
    /// recursion — every arc kind the conservation law must account for.
    const MIXED: &str = "extern int __fputc(int c, int fd);\n\
         int leaf(int a) { return a + 3; }\n\
         int twice(int a) { return leaf(a) + leaf(a + 1); }\n\
         int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }\n\
         int main() {\n\
           int i; int s; int (*fp)(int);\n\
           s = 0; fp = leaf;\n\
           for (i = 0; i < 20; i++) { s += twice(i); s += fp(i); }\n\
           s += fact(6);\n\
           __fputc('0' + (s & 7), 1);\n\
           return s & 0x7f;\n\
         }";

    fn mixed_profile() -> (Module, Profile) {
        let module = compile(&[Source::new("t.c", MIXED)]).expect("compiles");
        let out = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
        (module, out.profile)
    }

    #[test]
    fn real_profiles_conserve_flow() {
        let (module, profile) = mixed_profile();
        assert!(profile.calls > 0);
        let residuals = profile.flow_residuals(&module);
        assert!(residuals.is_empty(), "residuals: {residuals:?}");
    }

    #[test]
    fn incoming_weights_count_pointer_targets() {
        let (module, profile) = mixed_profile();
        let leaf = module.func_by_name("leaf").unwrap();
        let incoming = profile.incoming_arc_weights(&module);
        // 20 loop iterations * (2 direct from twice + 1 via pointer).
        assert_eq!(incoming[leaf.index()], 60);
        assert_eq!(profile.func_weight(leaf), 60);
    }

    #[test]
    fn tampered_entry_count_is_flagged() {
        let (module, mut profile) = mixed_profile();
        let leaf = module.func_by_name("leaf").unwrap();
        profile.func_entries[leaf.index()] += 1;
        let residuals = profile.flow_residuals(&module);
        assert_eq!(residuals.len(), 1);
        assert_eq!(residuals[0].func, leaf);
        assert_eq!(residuals[0].entries, residuals[0].expected + 1);
    }

    #[test]
    fn main_is_credited_one_os_entry_per_run() {
        let (module, profile) = mixed_profile();
        let main = module.main_id().unwrap();
        // Nothing calls main, yet the law holds because the OS entry is
        // accounted separately.
        assert_eq!(profile.incoming_arc_weights(&module)[main.index()], 0);
        assert_eq!(profile.func_weight(main), u64::from(profile.runs));
    }
}

// ----- on-disk text format -----------------------------------------------

/// 64-bit FNV-1a over `bytes` — the checksum behind the profile footer
/// and (via the `impact_vm` re-export) the campaign journal's per-record
/// CRCs. Not cryptographic; it detects truncation and accidental
/// corruption, which is all the crash-consistency layer needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Profile {
    /// Serializes the profile to a line-oriented text format — the
    /// "Profiler to C Compiler interface" (§1.2): the paper's profiler
    /// persists statistics that the compiler later reads back.
    ///
    /// The format is versioned and self-describing:
    ///
    /// ```text
    /// impact-profile v1
    /// runs 3
    /// il_executed 123456
    /// ...
    /// func_entries 1 500 500
    /// site_counts 500 500 0
    /// block_counts 0 1 500
    /// site_target 7 func 2 480
    /// checksum 0123456789abcdef
    /// ```
    ///
    /// The final `checksum` line is an FNV-1a 64 over every preceding
    /// byte: a profile cut at a line boundary used to parse "cleanly"
    /// with silently missing counters, and the footer turns that into a
    /// hard, diagnosable rejection.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "impact-profile v1");
        let _ = writeln!(s, "runs {}", self.runs);
        let _ = writeln!(s, "il_executed {}", self.il_executed);
        let _ = writeln!(s, "control_transfers {}", self.control_transfers);
        let _ = writeln!(s, "calls {}", self.calls);
        let _ = writeln!(s, "returns {}", self.returns);
        let _ = writeln!(s, "max_stack_bytes {}", self.max_stack_bytes);
        let join = |v: &[u64]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(s, "func_entries {}", join(&self.func_entries));
        let _ = writeln!(s, "site_counts {}", join(&self.site_counts));
        for (fi, counts) in self.block_counts.iter().enumerate() {
            let _ = writeln!(s, "block_counts {fi} {}", join(counts));
        }
        for (fi, counts) in self.branch_taken.iter().enumerate() {
            let _ = writeln!(s, "branch_taken {fi} {}", join(counts));
        }
        let mut sites: Vec<_> = self.site_targets.iter().collect();
        sites.sort_by_key(|(site, _)| site.0);
        for (site, targets) in sites {
            let mut ts: Vec<_> = targets.iter().collect();
            ts.sort();
            for (t, n) in ts {
                match t {
                    ProfTarget::Func(f) => {
                        let _ = writeln!(s, "site_target {} func {} {n}", site.0, f.0);
                    }
                    ProfTarget::Ext(x) => {
                        let _ = writeln!(s, "site_target {} ext {} {n}", site.0, x.0);
                    }
                }
            }
        }
        let _ = writeln!(s, "checksum {:016x}", fnv1a64(s.as_bytes()));
        s
    }

    /// Parses the format produced by [`Profile::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a line-anchored message on malformed input, and a
    /// truncation/corruption diagnostic when the `checksum` footer is
    /// missing or does not match the body.
    pub fn from_text(text: &str) -> Result<Profile, String> {
        let Some(pos) = text.rfind("\nchecksum ") else {
            return Err(
                "profile has no `checksum` footer: the file is truncated or corrupt".to_string(),
            );
        };
        let body = &text[..pos + 1];
        let footer_region = &text[pos + 1..];
        let (footer_line, rest) = match footer_region.split_once('\n') {
            Some((line, rest)) => (line, rest),
            None => (footer_region, ""),
        };
        if !rest.trim().is_empty() {
            return Err("trailing data after the profile `checksum` footer".to_string());
        }
        let hex = footer_line
            .strip_prefix("checksum ")
            .expect("region starts with the footer key")
            .trim();
        let expected = u64::from_str_radix(hex, 16)
            .map_err(|_| format!("bad profile checksum footer `{footer_line}`"))?;
        let actual = fnv1a64(body.as_bytes());
        if actual != expected {
            return Err(format!(
                "profile checksum mismatch (footer {expected:016x}, computed {actual:016x}): \
                 the file is truncated or corrupt"
            ));
        }
        let mut lines = body.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty profile")?;
        if header.trim() != "impact-profile v1" {
            return Err(format!("bad header `{header}`"));
        }
        let mut p = Profile::default();
        let parse_u64 = |ln: usize, tok: &str| {
            tok.parse::<u64>()
                .map_err(|_| format!("line {}: bad number `{tok}`", ln + 1))
        };
        for (ln, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("nonempty line");
            let rest: Vec<&str> = it.collect();
            match key {
                "runs" => p.runs = parse_u64(ln, rest.first().ok_or("missing value")?)? as u32,
                "il_executed" => p.il_executed = parse_u64(ln, rest.first().ok_or("missing")?)?,
                "control_transfers" => {
                    p.control_transfers = parse_u64(ln, rest.first().ok_or("missing")?)?
                }
                "calls" => p.calls = parse_u64(ln, rest.first().ok_or("missing")?)?,
                "returns" => p.returns = parse_u64(ln, rest.first().ok_or("missing")?)?,
                "max_stack_bytes" => {
                    p.max_stack_bytes = parse_u64(ln, rest.first().ok_or("missing")?)?
                }
                "func_entries" => {
                    p.func_entries = rest
                        .iter()
                        .map(|t| parse_u64(ln, t))
                        .collect::<Result<_, _>>()?;
                }
                "site_counts" => {
                    p.site_counts = rest
                        .iter()
                        .map(|t| parse_u64(ln, t))
                        .collect::<Result<_, _>>()?;
                }
                "block_counts" => {
                    let fi = parse_u64(ln, rest.first().ok_or("missing func index")?)? as usize;
                    if p.block_counts.len() <= fi {
                        p.block_counts.resize(fi + 1, Vec::new());
                    }
                    p.block_counts[fi] = rest[1..]
                        .iter()
                        .map(|t| parse_u64(ln, t))
                        .collect::<Result<_, _>>()?;
                }
                "branch_taken" => {
                    let fi = parse_u64(ln, rest.first().ok_or("missing func index")?)? as usize;
                    if p.branch_taken.len() <= fi {
                        p.branch_taken.resize(fi + 1, Vec::new());
                    }
                    p.branch_taken[fi] = rest[1..]
                        .iter()
                        .map(|t| parse_u64(ln, t))
                        .collect::<Result<_, _>>()?;
                }
                "site_target" => {
                    if rest.len() != 4 {
                        return Err(format!("line {}: site_target needs 4 fields", ln + 1));
                    }
                    let site = CallSiteId(parse_u64(ln, rest[0])? as u32);
                    let id = parse_u64(ln, rest[2])? as u32;
                    let n = parse_u64(ln, rest[3])?;
                    let target = match rest[1] {
                        "func" => ProfTarget::Func(FuncId(id)),
                        "ext" => ProfTarget::Ext(ExternId(id)),
                        other => return Err(format!("line {}: bad target kind `{other}`", ln + 1)),
                    };
                    p.site_targets.entry(site).or_default().insert(target, n);
                }
                other => return Err(format!("line {}: unknown key `{other}`", ln + 1)),
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod text_tests {
    use super::*;
    use impact_il::Function;

    fn sample_profile() -> Profile {
        let mut m = Module::new();
        m.add_function(Function::new("main", 0));
        m.add_function(Function::new("f", 0));
        let s0 = m.fresh_call_site();
        let _s1 = m.fresh_call_site();
        let mut p = Profile::for_module(&m);
        p.runs = 3;
        p.il_executed = 1234;
        p.control_transfers = 99;
        p.calls = 55;
        p.returns = 56;
        p.max_stack_bytes = 2048;
        p.func_entries = vec![1, 54];
        p.site_counts = vec![54, 1];
        p.block_counts = vec![vec![1, 2], vec![54]];
        p.branch_taken = vec![vec![0, 1], vec![30]];
        p.site_targets
            .entry(s0)
            .or_default()
            .insert(ProfTarget::Func(FuncId(1)), 54);
        p.site_targets
            .entry(s0)
            .or_default()
            .insert(ProfTarget::Ext(ExternId(0)), 3);
        p
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let p = sample_profile();
        let text = p.to_text();
        let q = Profile::from_text(&text).expect("parses");
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_bad_header_and_junk() {
        assert!(Profile::from_text("").is_err());
        assert!(Profile::from_text("not-a-profile").is_err());
        assert!(Profile::from_text("impact-profile v1\nbogus_key 3").is_err());
        assert!(Profile::from_text("impact-profile v1\nruns x").is_err());
        assert!(Profile::from_text("impact-profile v1\nsite_target 1 alien 2 3").is_err());
    }

    #[test]
    fn text_is_stable_and_human_readable() {
        let text = sample_profile().to_text();
        assert!(text.starts_with("impact-profile v1\n"));
        assert!(text.contains("runs 3"));
        assert!(text.contains("func_entries 1 54"));
        assert!(text.contains("site_target 0 func 1 54"));
        assert!(
            text.lines().last().unwrap().starts_with("checksum "),
            "checksum footer must be the last line: {text}"
        );
    }

    #[test]
    fn truncation_at_a_line_boundary_is_rejected() {
        // Before the checksum footer, a profile cut at a *line boundary*
        // parsed successfully with silently-zero counters — the latent
        // degradation bug. It must now be rejected with a diagnostic.
        let text = sample_profile().to_text();
        let cut = text.find("max_stack_bytes").expect("key present");
        let err = Profile::from_text(&text[..cut]).unwrap_err();
        assert!(
            err.contains("truncated or corrupt"),
            "unactionable message: {err}"
        );
    }

    #[test]
    fn tampered_body_fails_the_checksum() {
        let text = sample_profile().to_text();
        let tampered = text.replacen("runs 3", "runs 4", 1);
        let err = Profile::from_text(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // Junk after the footer is also rejected.
        let trailing = format!("{text}stray line\n");
        let err = Profile::from_text(&trailing).unwrap_err();
        assert!(err.contains("trailing data"), "{err}");
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    /// A valid profile text to mangle: exercises every record kind.
    fn seed_text() -> String {
        let mut p = Profile {
            runs: 2,
            il_executed: 999,
            calls: 54,
            control_transfers: 7,
            returns: 3,
            max_stack_bytes: 4096,
            func_entries: vec![12, 34],
            site_counts: vec![5, 6, 7],
            block_counts: vec![vec![1, 2], vec![3]],
            branch_taken: vec![vec![0], vec![9, 9]],
            ..Profile::default()
        };
        p.site_targets
            .entry(impact_il::CallSiteId(1))
            .or_default()
            .insert(ProfTarget::Func(impact_il::FuncId(0)), 5);
        p.to_text()
    }

    proptest! {
        #[test]
        fn from_text_never_panics_on_arbitrary_input(s in any::<String>()) {
            // Any outcome is fine except a panic.
            let _ = Profile::from_text(&s);
        }

        #[test]
        fn from_text_never_panics_on_truncations(cut in 0usize..4096) {
            let text = seed_text();
            let cut = cut.min(text.len());
            // Truncate at an arbitrary byte (snap to a char boundary —
            // the format is ASCII, so every byte is one).
            let _ = Profile::from_text(&text[..cut]);
        }

        #[test]
        fn from_text_never_panics_on_byte_mangling(
            pos in 0usize..4096,
            byte in any::<u8>(),
        ) {
            let mut bytes = seed_text().into_bytes();
            let pos = pos % bytes.len();
            bytes[pos] = byte;
            let mangled = String::from_utf8_lossy(&bytes).into_owned();
            // Must parse, reject, or mis-parse — never panic.
            let _ = Profile::from_text(&mangled);
        }

        #[test]
        fn round_trip_of_parsed_mangles_is_stable(pos in 0usize..4096, byte in any::<u8>()) {
            let mut bytes = seed_text().into_bytes();
            let pos = pos % bytes.len();
            bytes[pos] = byte;
            let mangled = String::from_utf8_lossy(&bytes).into_owned();
            if let Ok(p) = Profile::from_text(&mangled) {
                // Whatever parsed must round-trip losslessly.
                let q = Profile::from_text(&p.to_text()).expect("re-parses");
                prop_assert_eq!(p, q);
            }
        }
    }
}
