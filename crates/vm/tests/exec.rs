//! Behavioral tests: C programs compiled by `impact-cfront` and executed
//! by the VM, checking observable results (exit codes, output bytes) and
//! the profile counters the inliner depends on.

use impact_cfront::{compile, Source};
use impact_vm::{run, Engine, NamedFile, VmConfig, VmError};

const BOTH_ENGINES: [Engine; 2] = [Engine::Interp, Engine::Bytecode];

fn exec(src: &str) -> i64 {
    exec_io(src, vec![], vec![]).0
}

/// Execute under both engines, assert the observable results agree, and
/// return them — every behavioral test in this file is differential.
fn exec_io(src: &str, inputs: Vec<NamedFile>, args: Vec<String>) -> (i64, String) {
    let module = compile(&[Source::new("t.c", src)]).expect("compiles");
    impact_il::verify_module(&module).expect("verifies");
    let mut results = BOTH_ENGINES.map(|engine| {
        let cfg = VmConfig {
            engine,
            ..VmConfig::default()
        };
        let out = run(&module, inputs.clone(), args.clone(), &cfg).expect("runs");
        (
            out.exit_code,
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.profile,
        )
    });
    let (exit, stdout, profile) = results[0].clone();
    let (b_exit, b_stdout, b_profile) = std::mem::take(&mut results[1]);
    assert_eq!(exit, b_exit, "engines disagree on exit code");
    assert_eq!(stdout, b_stdout, "engines disagree on stdout");
    assert_eq!(profile, b_profile, "engines disagree on the profile");
    (exit, stdout)
}

fn exec_err(src: &str) -> VmError {
    exec_err_with(src, VmConfig::default)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(exec("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
    assert_eq!(exec("int main() { return (2 + 3) * 4 % 7; }"), 6);
    assert_eq!(exec("int main() { return 10 - -3; }"), 13);
    assert_eq!(exec("int main() { return ~0 & 0xff; }"), 255);
    assert_eq!(exec("int main() { return 1 << 10; }"), 1024);
    assert_eq!(exec("int main() { return -16 >> 2; }"), -4);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(exec("int main() { return 3 < 5; }"), 1);
    assert_eq!(exec("int main() { return 5 <= 4; }"), 0);
    assert_eq!(exec("int main() { return (1 && 0) || (2 && 3); }"), 1);
    assert_eq!(exec("int main() { return !42; }"), 0);
    assert_eq!(exec("int main() { return !0; }"), 1);
}

#[test]
fn short_circuit_skips_side_effects() {
    assert_eq!(
        exec(
            "int g;\n\
             int bump() { g = g + 1; return 1; }\n\
             int main() { 0 && bump(); 1 || bump(); return g; }"
        ),
        0
    );
    assert_eq!(
        exec(
            "int g;\n\
             int bump() { g = g + 1; return 1; }\n\
             int main() { 1 && bump(); 0 || bump(); return g; }"
        ),
        2
    );
}

#[test]
fn while_and_for_loops() {
    assert_eq!(
        exec("int main() { int i; int s; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }"),
        55
    );
    assert_eq!(
        exec("int main() { int n; n = 100; while (n > 1) n /= 2; return n; }"),
        1
    );
    assert_eq!(
        exec("int main() { int n; n = 0; do { n++; } while (n < 5); return n; }"),
        5
    );
}

#[test]
fn break_and_continue() {
    assert_eq!(
        exec(
            "int main() {\n\
               int i; int s; s = 0;\n\
               for (i = 0; i < 100; i++) {\n\
                 if (i % 2) continue;\n\
                 if (i > 10) break;\n\
                 s += i;\n\
               }\n\
               return s;\n\
             }"
        ),
        30 // 0+2+4+6+8+10
    );
}

#[test]
fn switch_dispatch_and_fallthrough() {
    let prog = |x: i32| {
        format!(
            "int classify(int x) {{\n\
               int n; n = 0;\n\
               switch (x) {{\n\
                 case 1: n += 1;\n\
                 case 2: n += 2; break;\n\
                 case 3: return 30;\n\
                 default: n = 99;\n\
               }}\n\
               return n;\n\
             }}\n\
             int main() {{ return classify({x}); }}"
        )
    };
    assert_eq!(exec(&prog(1)), 3); // falls through 1 → 2
    assert_eq!(exec(&prog(2)), 2);
    assert_eq!(exec(&prog(3)), 30);
    assert_eq!(exec(&prog(7)), 99);
}

#[test]
fn recursion_fibonacci() {
    assert_eq!(
        exec(
            "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n\
             int main() { return fib(12); }"
        ),
        144
    );
}

#[test]
fn mutual_recursion() {
    assert_eq!(
        exec(
            "int is_odd(int n);\n\
             int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }\n\
             int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }\n\
             int main() { return is_even(10) * 10 + is_odd(7); }"
        ),
        11
    );
}

#[test]
fn pointers_and_out_params() {
    assert_eq!(
        exec(
            "void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }\n\
             int main() { int x; int y; x = 3; y = 40; swap(&x, &y); return x - y; }"
        ),
        37
    );
}

#[test]
fn arrays_and_pointer_walks() {
    assert_eq!(
        exec(
            "int main() {\n\
               int a[5]; int i; int s; int *p;\n\
               for (i = 0; i < 5; i++) a[i] = i * i;\n\
               s = 0;\n\
               for (p = a; p < a + 5; p++) s += *p;\n\
               return s;\n\
             }"
        ),
        30
    );
}

#[test]
fn strings_and_char_ops() {
    assert_eq!(
        exec(
            "int my_strlen(char *s) { int n; n = 0; while (s[n]) n++; return n; }\n\
             int main() { return my_strlen(\"hello world\"); }"
        ),
        11
    );
    assert_eq!(exec("int main() { char c; c = 'A'; return c + 2; }"), 67);
}

#[test]
fn global_state_and_tables() {
    assert_eq!(
        exec(
            "int table[8] = {1, 2, 4, 8, 16, 32, 64, 128};\n\
             int counter;\n\
             int next() { return table[counter++ & 7]; }\n\
             int main() { int s; s = next() + next() + next(); return s; }"
        ),
        7
    );
}

#[test]
fn structs_through_pointers() {
    assert_eq!(
        exec(
            "struct point { int x; int y; };\n\
             struct point origin;\n\
             void shift(struct point *p, int dx, int dy) { p->x += dx; p->y += dy; }\n\
             int main() { shift(&origin, 3, 4); return origin.x * 10 + origin.y; }"
        ),
        34
    );
}

#[test]
fn linked_list_on_heap() {
    assert_eq!(
        exec(
            "extern long __malloc(long n);\n\
             struct node { int v; struct node *next; };\n\
             int main() {\n\
               struct node *head; struct node *n; int i; int s;\n\
               head = 0;\n\
               for (i = 1; i <= 4; i++) {\n\
                 n = (struct node*)__malloc(sizeof(struct node));\n\
                 n->v = i; n->next = head; head = n;\n\
               }\n\
               s = 0;\n\
               for (n = head; n; n = n->next) s = s * 10 + n->v;\n\
               return s;\n\
             }"
        ),
        4321
    );
}

#[test]
fn function_pointers_direct_and_table() {
    assert_eq!(
        exec(
            "int add(int a, int b) { return a + b; }\n\
             int mul(int a, int b) { return a * b; }\n\
             int (*ops[2])(int, int) = {add, mul};\n\
             int apply(int which, int a, int b) { return ops[which](a, b); }\n\
             int main() { return apply(0, 2, 3) * apply(1, 2, 3); }"
        ),
        30
    );
}

#[test]
fn unsigned_semantics() {
    assert_eq!(
        exec("int main() { unsigned a; a = 0; a = a - 1; return a > 100; }"),
        1
    );
    assert_eq!(
        exec("int main() { unsigned char c; c = 255; c = c + 1; return c; }"),
        0
    );
    assert_eq!(exec("int main() { return (unsigned char)-1; }"), 255);
}

#[test]
fn narrow_types_truncate() {
    assert_eq!(exec("int main() { char c; c = 300; return c; }"), 44);
    assert_eq!(
        exec("int main() { short s; s = 70000; return s == 70000 - 65536; }"),
        1
    );
}

#[test]
fn conditional_and_comma() {
    assert_eq!(exec("int main() { return 1 ? 2 : 3; }"), 2);
    assert_eq!(exec("int main() { int x; x = (1, 2, 3); return x; }"), 3);
    assert_eq!(
        exec("int main() { int a; a = 5; return a > 3 ? a > 4 ? 44 : 4 : 3; }"),
        44
    );
}

#[test]
fn inc_dec_semantics() {
    assert_eq!(
        exec("int main() { int i; i = 5; return i++ * 10 + i; }"),
        56
    );
    assert_eq!(
        exec("int main() { int i; i = 5; return ++i * 10 + i; }"),
        66
    );
    assert_eq!(
        exec("int main() { int a[3]; int *p; a[0]=1; a[1]=2; a[2]=3; p = a; return *p++ + *p; }"),
        3
    );
}

#[test]
fn io_echo_program() {
    let (code, out) = exec_io(
        "extern int __fgetc(int fd);\n\
         extern int __fputc(int c, int fd);\n\
         int main() {\n\
           int c;\n\
           while ((c = __fgetc(0)) != -1) __fputc(c, 1);\n\
           return 0;\n\
         }",
        vec![NamedFile::new("stdin", b"echo me!".to_vec())],
        vec![],
    );
    assert_eq!(code, 0);
    assert_eq!(out, "echo me!");
}

#[test]
fn io_open_named_files_and_args() {
    let (code, out) = exec_io(
        "extern int __open(char *path);\n\
         extern int __fgetc(int fd);\n\
         extern int __fputc(int c, int fd);\n\
         extern int __nargs(void);\n\
         extern int __arg(int i, char *buf);\n\
         int main() {\n\
           char name[64];\n\
           int fd; int c;\n\
           if (__nargs() < 1) return 2;\n\
           __arg(0, name);\n\
           fd = __open(name);\n\
           if (fd < 0) return 3;\n\
           while ((c = __fgetc(fd)) != -1) __fputc(c, 1);\n\
           return 0;\n\
         }",
        vec![NamedFile::new("data.txt", b"42".to_vec())],
        vec!["data.txt".into()],
    );
    assert_eq!(code, 0);
    assert_eq!(out, "42");
}

#[test]
fn exit_builtin_stops_program() {
    assert_eq!(
        exec(
            "extern void __exit(int code);\n\
             int main() { __exit(7); return 1; }"
        ),
        7
    );
}

#[test]
fn traps_on_null_deref() {
    let e = exec_err("int main() { int *p; p = 0; return *p; }");
    assert!(matches!(e, VmError::OutOfBounds { .. }), "{e}");
}

#[test]
fn traps_on_division_by_zero() {
    let e = exec_err("int main() { int z; z = 0; return 5 / z; }");
    assert!(matches!(e, VmError::DivisionByZero { .. }), "{e}");
}

#[test]
fn traps_on_unbounded_recursion() {
    let e = exec_err("int f(int n) { return f(n + 1); }\nint main() { return f(0); }");
    assert!(matches!(e, VmError::StackOverflow { .. }), "{e}");
}

#[test]
fn traps_on_step_limit() {
    let module = compile(&[Source::new("t.c", "int main() { while (1) {} return 0; }")]).unwrap();
    let cfg = VmConfig {
        max_steps: 10_000,
        ..VmConfig::default()
    };
    let e = run(&module, vec![], vec![], &cfg).expect_err("should hit limit");
    assert!(matches!(e, VmError::StepLimitExceeded { .. }), "{e}");
}

#[test]
fn traps_on_bad_function_pointer() {
    let e = exec_err("int main() { int (*f)(int); f = (int (*)(int))1234; return f(1); }");
    assert!(matches!(e, VmError::BadFunctionPointer { .. }), "{e}");
}

#[test]
fn profile_counts_calls_and_sites() {
    let module = compile(&[Source::new(
        "t.c",
        "int leaf(int x) { return x + 1; }\n\
         int mid(int x) { return leaf(x) + leaf(x + 1); }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += mid(i); return s & 0xff; }",
    )])
    .unwrap();
    let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    let p = &out.profile;
    let leaf = module.func_by_name("leaf").unwrap();
    let mid = module.func_by_name("mid").unwrap();
    let main = module.func_by_name("main").unwrap();
    assert_eq!(p.func_weight(main), 1);
    assert_eq!(p.func_weight(mid), 10);
    assert_eq!(p.func_weight(leaf), 20);
    // 10 calls to mid + 20 calls to leaf.
    assert_eq!(p.calls, 30);
    assert_eq!(p.returns, 31); // including main's return
                               // Each of the three static sites fired: mid's two sites 10x each,
                               // main's site 10x.
    let sites = module.all_call_sites();
    assert_eq!(sites.len(), 3);
    for (_, site, _) in &sites {
        assert_eq!(p.site_weight(*site), 10, "site {site:?}");
    }
    assert!(p.il_executed > 0);
    assert!(p.control_transfers > 0);
}

#[test]
fn profile_records_indirect_targets() {
    let module = compile(&[Source::new(
        "t.c",
        "int even(int x) { return x * 2; }\n\
         int odd(int x) { return x * 2 + 1; }\n\
         int (*pick[2])(int) = {even, odd};\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 6; i++) s += pick[i & 1](i); return s; }",
    )])
    .unwrap();
    let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    let p = &out.profile;
    // One indirect site, two targets, 3 hits each.
    assert_eq!(p.site_targets.len(), 1);
    let targets = p.site_targets.values().next().unwrap();
    assert_eq!(targets.len(), 2);
    for count in targets.values() {
        assert_eq!(*count, 3);
    }
}

#[test]
fn profile_stack_high_water_tracks_recursion() {
    let src = |depth: i32| {
        format!(
            "int f(int n) {{ char pad[256]; pad[0] = n; return n == 0 ? pad[0] : f(n - 1); }}\n\
             int main() {{ return f({depth}); }}"
        )
    };
    let shallow = {
        let m = compile(&[Source::new("t.c", src(2))]).unwrap();
        run(&m, vec![], vec![], &VmConfig::default())
            .unwrap()
            .profile
            .max_stack_bytes
    };
    let deep = {
        let m = compile(&[Source::new("t.c", src(20))]).unwrap();
        run(&m, vec![], vec![], &VmConfig::default())
            .unwrap()
            .profile
            .max_stack_bytes
    };
    assert!(deep > shallow + 256 * 15, "deep={deep} shallow={shallow}");
}

#[test]
fn profile_runs_merges_over_inputs() {
    let module = compile(&[Source::new(
        "t.c",
        "extern int __fgetc(int fd);\n\
         int count() { int n; n = 0; while (__fgetc(0) != -1) n++; return n; }\n\
         int main() { return count(); }",
    )])
    .unwrap();
    let runs: Vec<(Vec<NamedFile>, Vec<String>)> = vec![
        (vec![NamedFile::new("stdin", b"aa".to_vec())], vec![]),
        (vec![NamedFile::new("stdin", b"bbbb".to_vec())], vec![]),
    ];
    let (profile, outcomes) =
        impact_vm::profile_runs(&module, &runs, &VmConfig::default()).unwrap();
    assert_eq!(profile.runs, 2);
    assert_eq!(outcomes[0].exit_code, 2);
    assert_eq!(outcomes[1].exit_code, 4);
    let count = module.func_by_name("count").unwrap();
    assert_eq!(profile.func_weight(count), 2);
    let avg = profile.averaged();
    assert_eq!(avg.func_weight(count), 1);
}

#[test]
fn void_functions_and_implicit_return() {
    assert_eq!(
        exec(
            "int g;\n\
             void set(int v) { g = v; }\n\
             int main() { set(9); return g; }"
        ),
        9
    );
}

#[test]
fn sizeof_values_at_runtime() {
    assert_eq!(
        exec(
            "struct wide { long a; char b; };\n\
             int main() { return sizeof(struct wide) + sizeof(int) + sizeof(char*); }"
        ),
        16 + 4 + 8
    );
}

#[test]
fn bubble_sort_end_to_end() {
    let (code, out) = exec_io(
        "extern int __fputc(int c, int fd);\n\
         void sort(int *a, int n) {\n\
           int i; int j; int t;\n\
           for (i = 0; i < n - 1; i++)\n\
             for (j = 0; j < n - 1 - i; j++)\n\
               if (a[j] > a[j + 1]) { t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; }\n\
         }\n\
         int main() {\n\
           int a[6]; int i;\n\
           a[0]=5; a[1]=3; a[2]=9; a[3]=1; a[4]=8; a[5]=2;\n\
           sort(a, 6);\n\
           for (i = 0; i < 6; i++) __fputc('0' + a[i], 1);\n\
           return 0;\n\
         }",
        vec![],
        vec![],
    );
    assert_eq!(code, 0);
    assert_eq!(out, "123589");
}

#[test]
fn icache_simulation_reports_stats() {
    use impact_vm::IcacheConfig;
    let module = compile(&[Source::new(
        "t.c",
        "int step(int x) { return x * 3 + 1; }\n\
         int main() { int i; int s; s = 0; for (i = 0; i < 500; i++) s += step(i); return s & 0x7f; }",
    )])
    .unwrap();
    let cfg = VmConfig {
        icache: Some(IcacheConfig::small_direct_mapped()),
        ..VmConfig::default()
    };
    let out = run(&module, vec![], vec![], &cfg).unwrap();
    let stats = out.icache.expect("stats present");
    // Every executed IL instruction and terminator is one fetch.
    assert_eq!(stats.accesses, out.profile.il_executed);
    // The whole program fits in 8 KiB: after warmup it always hits.
    assert!(stats.misses < 64, "misses {}", stats.misses);
    assert!(stats.miss_ratio() < 0.01);
    // Disabled by default.
    let plain = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    assert!(plain.icache.is_none());
}

#[test]
fn branch_direction_frequencies_are_recorded() {
    // A branch taken 3 times out of 10 executions.
    let module = compile(&[Source::new(
        "t.c",
        "int main() {\n\
           int i; int s; s = 0;\n\
           for (i = 0; i < 10; i++)\n\
             if (i < 3) s += 100;\n\
             else s += 1;\n\
           return s & 0x7f;\n\
         }",
    )])
    .unwrap();
    let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    let main = module.main_id().unwrap();
    // Find the block whose branch split 3/7.
    let p = &out.profile;
    let found = (0..module.function(main).blocks.len() as u32)
        .any(|b| matches!(p.branch_directions(main, b), Some((3, 7))));
    assert!(
        found,
        "no 3/7 branch found: {:?}",
        p.branch_taken[main.index()]
    );
    // Out-of-range queries are None.
    assert!(p.branch_directions(main, 999).is_none());
}

// ---------------------------------------------------------------------------
// Trap matrix: one program per `VmError` variant, checking both the
// variant and that the Display message names the faulting function.
// Every entry runs under both engines and the traps must be *equal* —
// same kind, same message fields, same recorded step/limit counts — so
// the matrix doubles as the engine-parity proof for the error paths.
// `make_cfg` is called once per engine: fault plans carry one-shot hit
// counters that must not leak from one engine's run into the other's.
// ---------------------------------------------------------------------------

fn exec_err_with(src: &str, make_cfg: impl Fn() -> VmConfig) -> VmError {
    let module = compile(&[Source::new("t.c", src)]).expect("compiles");
    let [interp, bytecode] = BOTH_ENGINES.map(|engine| {
        let cfg = VmConfig {
            engine,
            ..make_cfg()
        };
        run(&module, vec![], vec![], &cfg).expect_err("should trap")
    });
    assert_eq!(interp, bytecode, "engines trapped differently");
    bytecode
}

#[test]
fn trap_matrix_out_of_bounds() {
    let e = exec_err(
        "int poke() { int *p; p = 0; return *p; }\n\
         int main() { return poke(); }",
    );
    assert!(matches!(e, VmError::OutOfBounds { .. }), "{e}");
    assert!(e.to_string().contains("`poke`"), "{e}");
}

#[test]
fn trap_matrix_division_by_zero() {
    let e = exec_err(
        "int halve(int z) { return 10 / z; }\n\
         int main() { return halve(0); }",
    );
    assert!(matches!(e, VmError::DivisionByZero { .. }), "{e}");
    assert!(e.to_string().contains("`halve`"), "{e}");
}

#[test]
fn trap_matrix_bad_function_pointer() {
    let e = exec_err(
        "int jump() { int (*f)(int); f = (int (*)(int))1234; return f(1); }\n\
         int main() { return jump(); }",
    );
    assert!(matches!(e, VmError::BadFunctionPointer { .. }), "{e}");
    assert!(e.to_string().contains("`jump`"), "{e}");
}

#[test]
fn trap_matrix_indirect_arity_mismatch() {
    let e = exec_err(
        "int two(int a, int b) { return a + b; }\n\
         int main() { int (*f)(int); f = (int (*)(int))two; return f(1); }",
    );
    assert!(matches!(e, VmError::IndirectArityMismatch { .. }), "{e}");
    // Names the callee that was reached with the wrong arity.
    assert!(e.to_string().contains("`two`"), "{e}");
}

#[test]
fn trap_matrix_stack_overflow() {
    let e = exec_err(
        "int dive(int n) { return dive(n + 1); }\n\
         int main() { return dive(0); }",
    );
    assert!(matches!(e, VmError::StackOverflow { .. }), "{e}");
    assert!(e.to_string().contains("`dive`"), "{e}");
}

#[test]
fn trap_matrix_step_limit_exceeded() {
    let e = exec_err_with(
        "int spin() { while (1) {} return 0; }\n\
         int main() { return spin(); }",
        || VmConfig {
            max_steps: 5_000,
            ..VmConfig::default()
        },
    );
    assert!(matches!(e, VmError::StepLimitExceeded { .. }), "{e}");
    assert!(e.to_string().contains("`spin`"), "{e}");
}

#[test]
fn trap_matrix_unknown_extern() {
    // Extern resolution is lazy: the trap fires at the call and is
    // attributed to the calling function.
    let e = exec_err(
        "extern int __nosuch(int x);\n\
         int probe() { return __nosuch(1); }\n\
         int main() { return probe(); }",
    );
    assert!(matches!(e, VmError::UnknownExtern { .. }), "{e}");
    assert!(e.to_string().contains("`probe`"), "{e}");
}

#[test]
fn trap_matrix_bad_builtin_call() {
    // `__fgetc` takes one parameter; a two-parameter declaration is a
    // signature mismatch caught when the call resolves the builtin.
    let e = exec_err(
        "extern int __fgetc(int fd, int extra);\n\
         int fetch() { return __fgetc(0, 1); }\n\
         int main() { return fetch(); }",
    );
    assert!(matches!(e, VmError::BadBuiltinCall { .. }), "{e}");
    assert!(e.to_string().contains("`fetch`"), "{e}");
}

#[test]
fn trap_matrix_out_of_memory() {
    // Natural exhaustion returns NULL per C convention, so the error
    // path is driven by the `vm:oom` fault point (re-armed per engine).
    let e = exec_err_with(
        "extern long __malloc(long n);\n\
         int grab() { long p; p = __malloc(64); return p != 0; }\n\
         int main() { return grab(); }",
        || {
            let fault = impact_vm::FaultPlan::new();
            fault.arm("vm:oom", 1);
            VmConfig {
                fault,
                ..VmConfig::default()
            }
        },
    );
    assert!(
        matches!(e, VmError::OutOfMemory { requested: 64, .. }),
        "{e}"
    );
    assert!(e.to_string().contains("`grab`"), "{e}");
}

#[test]
fn trap_matrix_abort() {
    let e = exec_err(
        "extern void __abort();\n\
         int bail() { __abort(); return 0; }\n\
         int main() { return bail(); }",
    );
    assert!(matches!(e, VmError::Abort { .. }), "{e}");
    assert!(e.to_string().contains("`bail`"), "{e}");
}

#[test]
fn natural_heap_exhaustion_returns_null_not_a_trap() {
    let (code, _) = exec_io(
        "extern long __malloc(long n);\n\
         int main() { long p; p = __malloc(1 << 30); return p == 0; }",
        vec![],
        vec![],
    );
    assert_eq!(code, 1, "oversized malloc should yield NULL");
}
