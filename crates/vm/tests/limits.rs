//! Resource-governor boundary tests and profile round-trip properties.
//!
//! The batch supervisor's governor leans on three VM limits — instruction
//! fuel, the heap quota, and the stack segment — so each limit is pinned
//! down *at* its boundary here: a program that uses exactly the limit
//! must pass, and one unit less must trip. The proptest half checks that
//! profile serialization commutes with merging, the property crash-report
//! replay relies on when it re-merges persisted profiles.

use impact_cfront::{compile, Source};
use impact_il::{CallSiteId, FuncId};
use impact_vm::{run, Engine, ProfTarget, Profile, VmConfig, VmError};
use proptest::prelude::*;

/// Every boundary below is checked under both execution engines — the
/// governor's limits are part of the engine-parity contract: the exact
/// instruction where fuel runs out, the exact byte where the stack
/// overflows, and the exact allocation the quota refuses must not depend
/// on which engine ran the program.
const BOTH_ENGINES: [Engine; 2] = [Engine::Interp, Engine::Bytecode];

fn module_for(src: &str) -> impact_il::Module {
    let module = compile(&[Source::new("t.c", src)]).expect("compiles");
    impact_il::verify_module(&module).expect("verifies");
    module
}

const COUNTER: &str = "int add(int a, int b) { return a + b; }\n\
     int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s = add(s, i); return s; }";

#[test]
fn step_limit_boundary_is_exact() {
    let module = module_for(COUNTER);
    // Measure exactly how many ILs one run executes.
    let baseline = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
    let exact = baseline.profile.il_executed;
    assert!(exact > 0);

    let traps = BOTH_ENGINES.map(|engine| {
        // A budget of exactly that many instructions completes the run...
        let cfg = VmConfig {
            max_steps: exact,
            engine,
            ..VmConfig::default()
        };
        let out = run(&module, vec![], vec![], &cfg).expect("exact budget suffices");
        assert_eq!(out.exit_code, baseline.exit_code, "{engine}");
        assert_eq!(out.profile.il_executed, exact, "{engine}");

        // ...and one instruction less trips the governor.
        let cfg = VmConfig {
            max_steps: exact - 1,
            engine,
            ..VmConfig::default()
        };
        match run(&module, vec![], vec![], &cfg) {
            Err(e @ VmError::StepLimitExceeded { limit, .. }) => {
                assert_eq!(limit, exact - 1, "{engine}");
                e
            }
            other => panic!("{engine}: expected StepLimitExceeded, got {other:?}"),
        }
    });
    // The trap fires at the same instruction in the same function with
    // the same recorded counts, whichever engine hit the limit.
    assert_eq!(traps[0], traps[1], "engines trapped differently");
}

#[test]
fn stack_limit_boundary_is_exact() {
    // Nested calls with real frames, so the high-water mark is several
    // frames deep.
    let module = module_for(
        "int leaf(int x) { char pad[64]; pad[0] = x; return pad[0]; }\n\
         int mid(int x) { char pad[32]; pad[1] = x; return leaf(x) + pad[1]; }\n\
         int main() { return mid(3) & 0xff; }",
    );
    let baseline = run(&module, vec![], vec![], &VmConfig::default()).expect("runs");
    let peak = baseline.profile.max_stack_bytes;
    assert!(peak > 64, "frames should actually use the stack: {peak}");

    let traps = BOTH_ENGINES.map(|engine| {
        // A stack segment of exactly the high-water mark fits...
        let cfg = VmConfig {
            stack_size: peak,
            engine,
            ..VmConfig::default()
        };
        let out = run(&module, vec![], vec![], &cfg).expect("exact stack fits");
        assert_eq!(out.exit_code, baseline.exit_code, "{engine}");
        assert_eq!(out.profile.max_stack_bytes, peak, "{engine}");

        // ...and one byte less overflows.
        let cfg = VmConfig {
            stack_size: peak - 1,
            engine,
            ..VmConfig::default()
        };
        match run(&module, vec![], vec![], &cfg) {
            Err(e @ VmError::StackOverflow { .. }) => e,
            other => panic!("{engine}: expected StackOverflow, got {other:?}"),
        }
    });
    assert_eq!(traps[0], traps[1], "engines trapped differently");
}

#[test]
fn heap_quota_is_organic_not_injected() {
    // The quota makes `__malloc` return NULL (C convention) with no
    // fault plan armed — the governor's limit is a real allocator
    // boundary, not a failpoint.
    let module = module_for(
        "extern long __malloc(long n);\n\
         int main() {\n\
           long a; long b;\n\
           a = __malloc(400);\n\
           b = __malloc(400);\n\
           if (a == 0) return 1;\n\
           if (b == 0) return 2;\n\
           return 0;\n\
         }",
    );
    for engine in BOTH_ENGINES {
        let cfg = VmConfig {
            engine,
            ..VmConfig::default()
        };
        let out = run(&module, vec![], vec![], &cfg).expect("runs");
        assert_eq!(
            out.exit_code, 0,
            "{engine}: no quota, both allocations succeed"
        );

        let cfg = VmConfig {
            mem_limit: Some(512),
            engine,
            ..VmConfig::default()
        };
        let out = run(&module, vec![], vec![], &cfg).expect("quota is observable, not a trap");
        assert_eq!(
            out.exit_code, 2,
            "{engine}: second allocation exceeds the quota"
        );
    }
}

/// A profile with the given shape and the given fill seed, exercising
/// every serialized record kind (including pointer-site targets).
fn profile_with(shape: &[usize], sites: usize, fill: &[u64]) -> Profile {
    let mut f = fill.iter().copied().cycle();
    let mut next = move || f.next().unwrap() % (1 << 30);
    let mut p = Profile {
        runs: (next() % 7 + 1) as u32,
        il_executed: next(),
        control_transfers: next(),
        calls: next(),
        returns: next(),
        max_stack_bytes: next(),
        ..Profile::default()
    };
    p.func_entries = (0..shape.len()).map(|_| next()).collect();
    p.site_counts = (0..sites).map(|_| next()).collect();
    p.block_counts = shape
        .iter()
        .map(|&blocks| (0..blocks).map(|_| next()).collect())
        .collect();
    // taken <= executed so the derived not-taken count stays meaningful.
    p.branch_taken = p
        .block_counts
        .iter()
        .map(|counts| {
            counts
                .iter()
                .map(|&c| if c == 0 { 0 } else { next() % c })
                .collect()
        })
        .collect();
    for s in 0..sites {
        if next() % 2 == 0 {
            p.site_targets
                .entry(CallSiteId(s as u32))
                .or_default()
                .insert(
                    ProfTarget::Func(FuncId(next() as u32 % shape.len() as u32)),
                    next() + 1,
                );
        }
    }
    p
}

proptest! {
    /// Serialization commutes with merging: merging two profiles that
    /// each made a disk round-trip equals round-tripping the merge of
    /// the originals.
    #[test]
    fn merge_commutes_with_text_round_trip(
        shape in proptest::collection::vec(1usize..4, 1..4),
        sites in 0usize..5,
        fill_a in proptest::collection::vec(any::<u64>(), 8..32),
        fill_b in proptest::collection::vec(any::<u64>(), 8..32),
    ) {
        let a = profile_with(&shape, sites, &fill_a);
        let b = profile_with(&shape, sites, &fill_b);

        // Lossless round trip of each.
        let a2 = Profile::from_text(&a.to_text()).expect("a re-parses");
        let b2 = Profile::from_text(&b.to_text()).expect("b re-parses");
        prop_assert_eq!(&a2, &a);
        prop_assert_eq!(&b2, &b);

        // merge(parse(text(a)), parse(text(b))) == merge(a, b), and the
        // merge itself survives one more round trip.
        let mut direct = a.clone();
        direct.merge(&b);
        let mut via_text = a2;
        via_text.merge(&b2);
        prop_assert_eq!(&via_text, &direct);
        let direct2 = Profile::from_text(&direct.to_text()).expect("merge re-parses");
        prop_assert_eq!(&direct2, &direct);
    }

    /// Averaging a round-tripped profile equals averaging the original.
    #[test]
    fn averaged_is_stable_under_round_trip(
        shape in proptest::collection::vec(1usize..4, 1..4),
        sites in 0usize..5,
        fill in proptest::collection::vec(any::<u64>(), 8..32),
    ) {
        let p = profile_with(&shape, sites, &fill);
        let q = Profile::from_text(&p.to_text()).expect("re-parses");
        prop_assert_eq!(q.averaged(), p.averaged());
    }
}
