//! Engine-parity differential suite.
//!
//! The VM ships two execution engines — the tree-walking reference
//! interpreter and the flat register-bytecode engine — and the contract
//! is that the choice is *unobservable*: byte-identical exit code,
//! stdout, stderr, and created files, and record-identical profiles
//! (entries, arcs, flow residuals, size accounting, checksums) on every
//! program, under every compiler configuration.
//!
//! This suite drives that contract over two program populations:
//!
//! * the twelve paper workloads ([`impact_workloads::all_benchmarks`]),
//!   each pushed through the fuzz oracle's inline/opt configuration
//!   lattice (baseline, five inline variants, inline+opt, opt-only);
//! * a corpus from the fuzzer's program generator
//!   ([`impact_fuzz::generate`]), where runs may legitimately trap —
//!   then both engines must produce the *same* trap.

use impact_cfront::{compile, Source};
use impact_il::{verify_module, Module};
use impact_inline::{inline_module, InlineConfig, Linearization};
use impact_opt::optimize_module_isolated;
use impact_vm::{profile_runs, run, Engine, FaultPlan, IcacheConfig, NamedFile, Profile, VmConfig};
use impact_workloads::all_benchmarks;

/// One point of the configuration lattice (mirrors the fuzz oracle's
/// lattice, including its default arc-weight threshold of 10).
struct LatticePoint {
    name: &'static str,
    inline: Option<InlineConfig>,
    opt: bool,
}

fn lattice() -> Vec<LatticePoint> {
    let with_threshold = |mut cfg: InlineConfig| {
        cfg.weight_threshold = 10;
        cfg
    };
    vec![
        LatticePoint {
            name: "baseline",
            inline: None,
            opt: false,
        },
        LatticePoint {
            name: "inline-default",
            inline: Some(with_threshold(InlineConfig::default())),
            opt: false,
        },
        LatticePoint {
            name: "inline-tight-budget",
            inline: Some(with_threshold(InlineConfig {
                code_growth_limit: 1.05,
                ..InlineConfig::default()
            })),
            opt: false,
        },
        LatticePoint {
            name: "inline-tight-stack",
            inline: Some(with_threshold(InlineConfig {
                stack_bound: 64,
                ..InlineConfig::default()
            })),
            opt: false,
        },
        LatticePoint {
            name: "inline-aggressive",
            inline: Some({
                let mut cfg = InlineConfig {
                    code_growth_limit: 4.0,
                    ..InlineConfig::default()
                };
                cfg.weight_threshold = 1;
                cfg
            }),
            opt: false,
        },
        LatticePoint {
            name: "inline-reverse",
            inline: Some(with_threshold(InlineConfig {
                linearization: Linearization::ReverseNodeWeight,
                ..InlineConfig::default()
            })),
            opt: false,
        },
        LatticePoint {
            name: "inline-opt",
            inline: Some(with_threshold(InlineConfig::default())),
            opt: true,
        },
        LatticePoint {
            name: "opt-only",
            inline: None,
            opt: true,
        },
    ]
}

/// Apply one lattice point's transformation to a fresh copy of `base`,
/// using `avg` as the driving profile for inlining decisions.
fn transformed(base: &Module, avg: &Profile, point: &LatticePoint) -> Module {
    let mut module = base.clone();
    if let Some(cfg) = &point.inline {
        let _ = inline_module(&mut module, avg, cfg);
    }
    if point.opt {
        let _ = optimize_module_isolated(&mut module, &FaultPlan::new());
    }
    verify_module(&module).unwrap_or_else(|e| {
        panic!(
            "{}: transformed module fails verification: {e:?}",
            point.name
        )
    });
    module
}

fn config_for(engine: Engine, icache: bool) -> VmConfig {
    VmConfig {
        engine,
        icache: icache.then(IcacheConfig::small_direct_mapped),
        ..VmConfig::default()
    }
}

/// Run every input of `runs` through both engines and assert that all
/// observable results — including the per-run profile records and, when
/// `icache` is on, the simulated cache statistics — are identical.
fn assert_engine_parity(
    tag: &str,
    module: &Module,
    runs: &[(Vec<NamedFile>, Vec<String>)],
    icache: bool,
) {
    for (idx, (inputs, args)) in runs.iter().enumerate() {
        let interp = run(
            module,
            inputs.clone(),
            args.clone(),
            &config_for(Engine::Interp, icache),
        );
        let bytecode = run(
            module,
            inputs.clone(),
            args.clone(),
            &config_for(Engine::Bytecode, icache),
        );
        match (interp, bytecode) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.exit_code, b.exit_code, "{tag} run {idx}: exit code");
                assert_eq!(a.stdout, b.stdout, "{tag} run {idx}: stdout bytes");
                assert_eq!(a.stderr, b.stderr, "{tag} run {idx}: stderr bytes");
                assert_eq!(a.files, b.files, "{tag} run {idx}: created files");
                assert_eq!(a.profile, b.profile, "{tag} run {idx}: profile records");
                assert_eq!(a.icache, b.icache, "{tag} run {idx}: icache statistics");
                assert!(
                    a.profile.flow_residuals(module).is_empty(),
                    "{tag} run {idx}: profile violates flow conservation"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "{tag} run {idx}: engines trapped differently");
            }
            (a, b) => panic!(
                "{tag} run {idx}: one engine trapped and the other did not\n\
                 interp:   {a:?}\n\
                 bytecode: {b:?}",
            ),
        }
    }
}

/// All twelve paper workloads, through the full configuration lattice,
/// under both engines. One profiled input per workload keeps the debug-
/// mode runtime bounded; the input is the same one `profile_run_set`
/// hands the real profiler.
#[test]
fn twelve_workloads_match_across_the_lattice() {
    for bench in all_benchmarks() {
        let base = bench
            .compile()
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.name));
        let runs = bench.profile_run_set(1);
        let (profile, _) = profile_runs(&base, &runs, &VmConfig::default())
            .unwrap_or_else(|e| panic!("{}: baseline profiling trapped: {e}", bench.name));
        let avg = profile.averaged();
        for point in lattice() {
            let module = transformed(&base, &avg, &point);
            let tag = format!("{}/{}", bench.name, point.name);
            assert_engine_parity(&tag, &module, &runs, false);
        }
    }
}

/// The simulated instruction-cache access stream must also be engine-
/// independent: fused bytecode superinstructions still issue one fetch
/// per IL slot. Checked on the lighter workloads (the simulator roughly
/// doubles interpretation cost).
#[test]
fn icache_statistics_match_between_engines() {
    let light = ["tee", "wc", "cmp", "yacc"];
    for bench in all_benchmarks() {
        if !light.contains(&bench.name) {
            continue;
        }
        let base = bench
            .compile()
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", bench.name));
        let runs = bench.profile_run_set(1);
        let (profile, _) = profile_runs(&base, &runs, &VmConfig::default())
            .unwrap_or_else(|e| panic!("{}: baseline profiling trapped: {e}", bench.name));
        let avg = profile.averaged();
        // Baseline and the layout-changing points: inlining reshuffles
        // code addresses, so this exercises distinct access streams.
        for point in lattice() {
            if !matches!(point.name, "baseline" | "inline-default" | "inline-opt") {
                continue;
            }
            let module = transformed(&base, &avg, &point);
            let tag = format!("{}/{}+icache", bench.name, point.name);
            assert_engine_parity(&tag, &module, &runs, true);
        }
    }
}

/// The fuzz generator's corpus under both engines, across the lattice.
/// Generated programs may trap (step limits, memory faults, ...) — trap
/// parity is part of the contract, so trapping baselines are *kept* and
/// checked rather than skipped; only the lattice transforms (which need
/// a baseline profile to drive inlining) are limited to clean programs.
#[test]
fn fuzz_corpus_matches_across_the_lattice() {
    let runs: Vec<(Vec<NamedFile>, Vec<String>)> = vec![(Vec::new(), Vec::new())];
    let mut compiled = 0u32;
    let mut clean = 0u32;
    let mut trapping = 0u32;
    for seed in 0..32u64 {
        let source = impact_fuzz::generate(seed);
        let Ok(module) = compile(&[Source {
            name: "fuzz.c".into(),
            text: source,
        }]) else {
            continue;
        };
        if verify_module(&module).is_err() {
            continue;
        }
        compiled += 1;
        match profile_runs(&module, &runs, &VmConfig::default()) {
            Ok((profile, _)) => {
                clean += 1;
                let avg = profile.averaged();
                for point in lattice() {
                    let transformed = transformed(&module, &avg, &point);
                    let tag = format!("fuzz seed {seed}/{}", point.name);
                    assert_engine_parity(&tag, &transformed, &runs, false);
                }
            }
            Err(_) => {
                trapping += 1;
                assert_engine_parity(&format!("fuzz seed {seed}/trap"), &module, &runs, false);
            }
        }
    }
    assert!(
        compiled >= 16,
        "corpus too thin to be meaningful: {compiled} of 32 seeds compiled \
         ({clean} clean, {trapping} trapping)"
    );
}
