//! # impact-workloads — the twelve-benchmark suite
//!
//! Rebuilds the paper's evaluation suite (§4, Table 1): twelve frequently
//! used UNIX programs — `cccp cmp compress eqn espresso grep lex make tar
//! tee wc yacc` — as miniature but functionally faithful programs in the
//! [`impact_cfront`] C subset, each paired with a seeded generator of
//! *representative inputs*.
//!
//! ## Substitution note (documented in `DESIGN.md`)
//!
//! The original 1989 sources and the paper's collected input sets are not
//! available; these miniatures preserve what the experiment measures —
//! each tool's *call structure* (scanner loops, table-driven automata,
//! recursive descent, dependency traversal) and therefore the distribution
//! of dynamic calls over static call sites. Inputs are synthesized by
//! seeded generators of the same kind of data (C sources for `cccp`,
//! similar/dissimilar files for `cmp`, grammars for `yacc`, ...), making
//! every number downstream reproducible bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use impact_workloads::{benchmark, Benchmark};
//!
//! let grep = benchmark("grep").expect("known benchmark");
//! let module = grep.compile().expect("compiles");
//! assert!(module.main_id().is_some());
//! let input = grep.run_input(0);
//! assert!(!input.inputs.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod minilib;
pub mod programs;
pub mod textgen;

pub use minilib::MINILIB_C;

use impact_cfront::{compile, CompileError, Source};
use impact_il::Module;
use impact_vm::NamedFile;

/// The input files and program arguments for one benchmark run.
#[derive(Clone, Debug)]
pub struct RunInput {
    /// Named input files (one may be `stdin`).
    pub inputs: Vec<NamedFile>,
    /// Program arguments.
    pub args: Vec<String>,
}

/// One benchmark of the suite: program sources plus an input generator.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// The benchmark's name, as in the paper's tables.
    pub name: &'static str,
    /// Input description (Table 1's rightmost column).
    pub input_description: &'static str,
    /// Number of profiled runs (Table 1's `runs` column, from the paper).
    pub runs: u32,
    program: &'static str,
    gen: fn(u64) -> RunInput,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("runs", &self.runs)
            .finish()
    }
}

impl Benchmark {
    /// The C sources: the program itself plus the shared mini library.
    pub fn sources(&self) -> Vec<Source> {
        vec![
            Source::new("minilib.c", MINILIB_C),
            Source::new(format!("{}.c", self.name), self.program),
        ]
    }

    /// Compiles the benchmark to an IL module.
    ///
    /// # Errors
    ///
    /// Propagates front-end errors (which would indicate a bug in the
    /// bundled sources).
    pub fn compile(&self) -> Result<Module, CompileError> {
        compile(&self.sources())
    }

    /// Lines of C code (Table 1's `C lines` column): non-blank lines of
    /// the program and library sources.
    pub fn c_lines(&self) -> usize {
        self.sources()
            .iter()
            .map(|s| s.text.lines().filter(|l| !l.trim().is_empty()).count())
            .sum()
    }

    /// The inputs and arguments for run `idx` (deterministic in
    /// `(benchmark, idx)`).
    pub fn run_input(&self, idx: u32) -> RunInput {
        (self.gen)(idx as u64)
    }

    /// The full set of runs used by the tables (`self.runs` of them).
    pub fn all_run_inputs(&self) -> Vec<RunInput> {
        (0..self.runs).map(|i| self.run_input(i)).collect()
    }

    /// Run pairs in the shape [`impact_vm::profile_runs`] consumes.
    pub fn profile_run_set(&self, max_runs: u32) -> Vec<(Vec<NamedFile>, Vec<String>)> {
        (0..self.runs.min(max_runs))
            .map(|i| {
                let r = self.run_input(i);
                (r.inputs, r.args)
            })
            .collect()
    }
}

macro_rules! bench_entry {
    ($module:ident) => {
        Benchmark {
            name: stringify!($module),
            input_description: programs::$module::DESCRIPTION,
            runs: programs::$module::RUNS,
            program: programs::$module::SOURCE,
            gen: programs::$module::gen,
        }
    };
}

/// The twelve benchmarks, in the paper's table order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        bench_entry!(cccp),
        bench_entry!(cmp),
        bench_entry!(compress),
        bench_entry!(eqn),
        bench_entry!(espresso),
        bench_entry!(grep),
        bench_entry!(lex),
        bench_entry!(make),
        bench_entry!(tar),
        bench_entry!(tee),
        bench_entry!(wc),
        bench_entry!(yacc),
    ]
}

/// Looks up one benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The benchmark names in table order — the unit set `impactc batch
/// --workloads` supervises.
pub fn benchmark_names() -> Vec<&'static str> {
    all_benchmarks().iter().map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_in_paper_order() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "cccp", "cmp", "compress", "eqn", "espresso", "grep", "lex", "make", "tar", "tee",
                "wc", "yacc"
            ]
        );
    }

    #[test]
    fn run_counts_match_the_paper() {
        let runs: Vec<u32> = all_benchmarks().iter().map(|b| b.runs).collect();
        assert_eq!(runs, vec![20, 16, 20, 20, 20, 20, 4, 20, 14, 20, 20, 8]);
    }

    #[test]
    fn every_benchmark_compiles() {
        for b in all_benchmarks() {
            let module = b.compile().unwrap_or_else(|e| {
                panic!("{} failed to compile: {}", b.name, e.render(&b.sources()))
            });
            impact_il::verify_module(&module)
                .unwrap_or_else(|e| panic!("{} IL invalid: {:?}", b.name, e));
            assert!(module.main_id().is_some(), "{} has no main", b.name);
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        let g = benchmark("grep").unwrap();
        let a = g.run_input(3);
        let b = g.run_input(3);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.args, b.args);
    }

    #[test]
    fn c_lines_are_substantial() {
        for b in all_benchmarks() {
            assert!(b.c_lines() > 120, "{} only {} lines", b.name, b.c_lines());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("yacc").is_some());
        assert!(benchmark("nope").is_none());
    }
}
