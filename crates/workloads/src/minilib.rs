//! The shared mini C library linked into every benchmark.
//!
//! Real C programs of the paper's era carried their own small utility
//! functions in addition to libc; these are exactly the "many small
//! functions" profile-guided inlining feeds on. True system services
//! (I/O, the heap, exit) stay `extern` — they are the paper's external
//! functions and can never be inlined.

/// C source of the mini library (string/character/printing/reading
/// helpers).
pub const MINILIB_C: &str = r#"
/* mini runtime library shared by all benchmarks.
   I/O is buffered like 1989 stdio: getc/putc are ordinary (inlinable)
   functions over block read/write system calls. */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __fread(int fd, char *buf, int n);
extern int __fwrite(int fd, char *buf, int n);
extern int __open(char *path);
extern int __creat(char *path);
extern int __close(int fd);

enum { IOBUF = 1024, MAXFDS = 8 };

char in_buf[MAXFDS][IOBUF];
int in_pos[MAXFDS];
int in_len[MAXFDS];
char out_buf[MAXFDS][IOBUF];
int out_n[MAXFDS];

/* Refills the read buffer of fd; returns 0 at end of file. */
int in_fill(int fd) {
    in_len[fd] = __fread(fd, in_buf[fd], IOBUF);
    in_pos[fd] = 0;
    return in_len[fd] > 0;
}

/* Buffered getc: the hottest library function in most programs. */
int in_byte(int fd) {
    if (fd < 0 || fd >= MAXFDS) return __fgetc(fd);
    if (in_pos[fd] >= in_len[fd]) {
        if (!in_fill(fd)) return -1;
    }
    return in_buf[fd][in_pos[fd]++] & 255;
}

void flush_fd(int fd) {
    if (fd >= 0 && fd < MAXFDS && out_n[fd] > 0) {
        __fwrite(fd, out_buf[fd], out_n[fd]);
        out_n[fd] = 0;
    }
}

void flush_all() {
    int i;
    for (i = 0; i < MAXFDS; i++) flush_fd(i);
}

/* Buffered putc. */
void out_byte(int c, int fd) {
    if (fd < 0 || fd >= MAXFDS) { __fputc(c, fd); return; }
    out_buf[fd][out_n[fd]++] = c;
    if (out_n[fd] >= IOBUF) flush_fd(fd);
}

/* Opens a named input for buffered reading (resets stale buffers from a
   previously closed fd of the same number). */
int open_read(char *path) {
    int fd;
    fd = __open(path);
    if (fd >= 0 && fd < MAXFDS) { in_pos[fd] = 0; in_len[fd] = 0; }
    return fd;
}

/* Creates a named output for buffered writing. */
int open_write(char *path) {
    int fd;
    fd = __creat(path);
    if (fd >= 0 && fd < MAXFDS) out_n[fd] = 0;
    return fd;
}

/* Flushes and closes. */
void close_fd(int fd) {
    flush_fd(fd);
    if (fd >= 0 && fd < MAXFDS) { in_pos[fd] = 0; in_len[fd] = 0; }
    __close(fd);
}

int str_len(char *s) {
    int n;
    n = 0;
    while (s[n]) n++;
    return n;
}

int str_cmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int str_ncmp(char *a, char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) return a[i] - b[i];
        if (!a[i]) return 0;
    }
    return 0;
}

void str_cpy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
}

void str_ncpy(char *dst, char *src, int n) {
    int i;
    i = 0;
    while (i < n && src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
}

void str_cat(char *dst, char *src) {
    int i; int j;
    i = 0;
    while (dst[i]) i++;
    j = 0;
    while (src[j]) { dst[i] = src[j]; i++; j++; }
    dst[i] = 0;
}

int str_index(char *s, int c) {
    int i;
    for (i = 0; s[i]; i++)
        if (s[i] == c) return i;
    return -1;
}

int is_digit(int c) { return c >= '0' && c <= '9'; }
int is_lower(int c) { return c >= 'a' && c <= 'z'; }
int is_upper(int c) { return c >= 'A' && c <= 'Z'; }
int is_alpha(int c) { return is_lower(c) || is_upper(c); }
int is_alnum(int c) { return is_alpha(c) || is_digit(c); }
int is_space(int c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }
int to_lower(int c) { return is_upper(c) ? c + 32 : c; }
int to_upper(int c) { return is_lower(c) ? c - 32 : c; }

int a_to_i(char *s) {
    int v; int i; int neg;
    v = 0; i = 0; neg = 0;
    while (is_space(s[i])) i++;
    if (s[i] == '-') { neg = 1; i++; }
    while (is_digit(s[i])) { v = v * 10 + (s[i] - '0'); i++; }
    return neg ? -v : v;
}

void put_char(int c, int fd) { out_byte(c, fd); }

void put_str(char *s, int fd) {
    int i;
    for (i = 0; s[i]; i++) out_byte(s[i], fd);
}

void put_int(long n, int fd) {
    char buf[24];
    int i;
    long v;
    if (n < 0) { out_byte('-', fd); v = -n; } else v = n;
    i = 0;
    do { buf[i++] = '0' + (int)(v % 10); v /= 10; } while (v > 0);
    while (i > 0) out_byte(buf[--i], fd);
}

void put_line(char *s, int fd) {
    put_str(s, fd);
    out_byte('\n', fd);
}

/* Reads one line (without the newline) into buf, NUL-terminated.
   Returns the length, or -1 on end of file with nothing read. */
int read_line(int fd, char *buf, int max) {
    int c; int n;
    n = 0;
    while (1) {
        c = in_byte(fd);
        if (c == -1) {
            if (n == 0) { buf[0] = 0; return -1; }
            break;
        }
        if (c == '\n') break;
        if (n < max - 1) buf[n++] = c;
    }
    buf[n] = 0;
    return n;
}

void int_to_str(long n, char *buf) {
    char tmp[24];
    int i; int j;
    long v;
    j = 0;
    if (n < 0) { buf[j++] = '-'; v = -n; } else v = n;
    i = 0;
    do { tmp[i++] = '0' + (int)(v % 10); v /= 10; } while (v > 0);
    while (i > 0) buf[j++] = tmp[--i];
    buf[j] = 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use impact_cfront::{compile, Source};
    use impact_vm::{run, NamedFile, VmConfig};

    #[test]
    fn minilib_compiles_and_works() {
        let driver = r#"
extern int __fputc(int c, int fd);
int str_len(char *s);
int main() {
    char buf[64];
    char line[64];
    int n;
    str_cpy(buf, "hello");
    str_cat(buf, " world");
    if (str_len(buf) != 11) return 1;
    if (str_cmp(buf, "hello world") != 0) return 2;
    if (str_ncmp(buf, "hello xxxxx", 6) != 0) return 3;
    if (str_index(buf, 'w') != 6) return 4;
    if (!is_digit('7') || is_digit('x')) return 5;
    if (to_upper('a') != 'A' || to_lower('Z') != 'z') return 6;
    if (a_to_i("  -417") != -417) return 7;
    int_to_str(-305, line);
    if (str_cmp(line, "-305") != 0) return 8;
    put_int(12345, 1);
    put_char('|', 1);
    put_line("ok", 1);
    n = read_line(0, line, 64);
    if (n != 5 || str_cmp(line, "first") != 0) return 9;
    n = read_line(0, line, 64);
    if (n != 6 || str_cmp(line, "second") != 0) return 10;
    n = read_line(0, line, 64);
    if (n != -1) return 11;
    flush_all();
    return 0;
}
"#;
        let module = compile(&[
            Source::new("lib.c", MINILIB_C),
            Source::new("driver.c", driver),
        ])
        .expect("compiles");
        let out = run(
            &module,
            vec![NamedFile::new("stdin", b"first\nsecond".to_vec())],
            vec![],
            &VmConfig::default(),
        )
        .expect("runs");
        assert_eq!(
            out.exit_code,
            0,
            "stdout: {:?}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert_eq!(out.stdout, b"12345|ok\n".to_vec());
    }
}
