//! `cccp` — a miniature C preprocessor (the GNU C preprocessor in the
//! paper). Handles `#define`/`#undef`, `#ifdef`/`#ifndef`/`#else`/`#endif`,
//! `#include "file"`, comment stripping, and object-macro substitution.

use impact_vm::NamedFile;

use crate::textgen::{c_like_source, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs of C programs.
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "C programs (100-3000 lines)";

/// The program source.
pub const SOURCE: &str = r##"
/* cccp: miniature C preprocessor */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __open(char *path);
extern int __close(int fd);

enum { NMACROS = 128, NAMELEN = 32, VALLEN = 64, LINELEN = 512, MAXCOND = 32 };

char macro_names[NMACROS][NAMELEN];
char macro_vals[NMACROS][VALLEN];
int macro_live[NMACROS];
int nmacros;

int cond_stack[MAXCOND];
int cond_depth;
int in_comment;
long lines_out;

int macro_find(char *name) {
    int i;
    for (i = 0; i < nmacros; i++)
        if (macro_live[i] && str_cmp(macro_names[i], name) == 0)
            return i;
    return -1;
}

void macro_define(char *name, char *value) {
    int i;
    i = macro_find(name);
    if (i < 0) {
        if (nmacros >= NMACROS) return;
        i = nmacros++;
        str_ncpy(macro_names[i], name, NAMELEN - 1);
        macro_live[i] = 1;
    }
    str_ncpy(macro_vals[i], value, VALLEN - 1);
}

void macro_undef(char *name) {
    int i;
    i = macro_find(name);
    if (i >= 0) macro_live[i] = 0;
}

int active() {
    int i;
    for (i = 0; i < cond_depth; i++)
        if (!cond_stack[i]) return 0;
    return 1;
}

int ident_start(int c) { return is_alpha(c) || c == '_'; }
int ident_char(int c) { return is_alnum(c) || c == '_'; }

/* Strips comments in place; tracks multi-line comment state. */
void strip_comments(char *line, char *out) {
    int i; int j;
    i = 0; j = 0;
    while (line[i]) {
        if (in_comment) {
            if (line[i] == '*' && line[i + 1] == '/') { in_comment = 0; i += 2; }
            else i++;
        } else if (line[i] == '/' && line[i + 1] == '*') {
            in_comment = 1;
            i += 2;
        } else if (line[i] == '/' && line[i + 1] == '/') {
            break;
        } else {
            out[j++] = line[i++];
        }
    }
    out[j] = 0;
}

/* Substitutes macros in a code line and writes the result to stdout. */
void expand_line(char *line) {
    char name[NAMELEN];
    int i; int n; int m;
    i = 0;
    while (line[i]) {
        if (ident_start(line[i])) {
            n = 0;
            while (ident_char(line[i])) {
                if (n < NAMELEN - 1) name[n++] = line[i];
                i++;
            }
            name[n] = 0;
            m = macro_find(name);
            if (m >= 0) put_str(macro_vals[m], 1);
            else put_str(name, 1);
        } else {
            put_char(line[i], 1);
            i++;
        }
    }
    put_char('\n', 1);
    lines_out++;
}

/* Splits "#word rest" and returns the directive word; rest in arg. */
void parse_directive(char *line, char *word, char *arg) {
    int i; int n;
    i = 1;
    while (is_space(line[i])) i++;
    n = 0;
    while (is_alpha(line[i])) { word[n++] = line[i]; i++; }
    word[n] = 0;
    while (is_space(line[i])) i++;
    n = 0;
    while (line[i] && line[i] != '\n') { arg[n++] = line[i]; i++; }
    while (n > 0 && is_space(arg[n - 1])) n--;
    arg[n] = 0;
}

void process_fd(int fd, int depth);

/* Directive handlers, dispatched through a function-pointer table (the
   classic C idiom that makes the compiler's call graph ambiguous). */
void dir_define(char *arg, int depth) {
    char name[NAMELEN];
    int i; int n;
    if (!active()) return;
    i = 0; n = 0;
    while (ident_char(arg[i])) { name[n++] = arg[i]; i++; }
    name[n] = 0;
    while (is_space(arg[i])) i++;
    macro_define(name, arg + i);
}

void dir_undef(char *arg, int depth) {
    if (active()) macro_undef(arg);
}

void dir_ifdef(char *arg, int depth) {
    cond_stack[cond_depth++] = macro_find(arg) >= 0;
}

void dir_ifndef(char *arg, int depth) {
    cond_stack[cond_depth++] = macro_find(arg) < 0;
}

void dir_else(char *arg, int depth) {
    if (cond_depth > 0) cond_stack[cond_depth - 1] = !cond_stack[cond_depth - 1];
}

void dir_endif(char *arg, int depth) {
    if (cond_depth > 0) cond_depth--;
}

void dir_include(char *arg, int depth) {
    char name[NAMELEN];
    int i; int n; int inc;
    if (!active() || depth > 6) return;
    /* strip quotes */
    i = 0; n = 0;
    while (arg[i]) {
        if (arg[i] != '"' && arg[i] != '<' && arg[i] != '>') name[n++] = arg[i];
        i++;
    }
    name[n] = 0;
    inc = open_read(name);
    if (inc >= 0) {
        process_fd(inc, depth + 1);
        close_fd(inc);
    }
}

char dir_names[7][NAMELEN] = {"define", "undef", "ifdef", "ifndef", "else", "endif", "include"};
void (*dir_table[7])(char *arg, int depth) = {
    dir_define, dir_undef, dir_ifdef, dir_ifndef, dir_else, dir_endif, dir_include
};

void handle_directive(char *line, int depth) {
    char word[NAMELEN];
    char arg[LINELEN];
    int d;
    parse_directive(line, word, arg);
    for (d = 0; d < 7; d++) {
        if (str_cmp(word, dir_names[d]) == 0) {
            dir_table[d](arg, depth);
            return;
        }
    }
}

void process_fd(int fd, int depth) {
    char raw[LINELEN];
    char line[LINELEN];
    while (read_line(fd, raw, LINELEN) != -1) {
        strip_comments(raw, line);
        if (line[0] == '#') handle_directive(line, depth);
        else if (active()) expand_line(line);
    }
}

int main() {
    int fd;
    fd = open_read("main.c");
    if (fd < 0) return 1;
    process_fd(fd, 0);
    close_fd(fd);
    put_str("; lines ", 1);
    put_int(lines_out, 1);
    put_char('\n', 1);
    flush_all();
    return 0;
}
"##;

/// Generates the inputs for one run: a main source plus two headers it
/// includes, of varying size and option mix.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("cccp", run);
    let main_lines = 80 + (run as usize % 10) * 35;
    let mut main_src = Vec::new();
    main_src.extend_from_slice(b"#include \"defs.h\"\n");
    main_src.extend_from_slice(b"#include \"util.h\"\n");
    main_src.extend_from_slice(b"#ifdef CFG_MAIN0\n#endif\n");
    main_src.extend_from_slice(&c_like_source(&mut rng, main_lines));
    let defs = c_like_source(&mut rng, 25 + (run as usize % 7) * 8);
    let util = c_like_source(&mut rng, 18 + (run as usize % 5) * 6);
    RunInput {
        inputs: vec![
            NamedFile::new("main.c", main_src),
            NamedFile::new("defs.h", defs),
            NamedFile::new("util.h", util),
        ],
        args: vec![],
    }
}
