//! `cmp` — byte-by-byte file comparison with `-l` (list differences) and
//! `-s` (silent) options.

use impact_vm::NamedFile;

use crate::textgen::{english_text, mutate, rng_for};
use crate::RunInput;

/// Paper Table 1: 16 runs.
pub const RUNS: u32 = 16;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "similar/dissimilar text files";

/// The program source.
pub const SOURCE: &str = r#"
/* cmp: compare two files byte by byte */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __open(char *path);
extern int __nargs(void);
extern int __arg(int i, char *buf);
extern void __exit(int code);

enum { MODE_NORMAL = 0, MODE_LIST = 1, MODE_SILENT = 2 };

long position;
long line_no;
long diff_count;

/* buffered-getc style wrapper: the hot helper real cmp hides in stdio */
int get_byte(int fd) {
    return in_byte(fd);
}

void report_diff(long pos, long line, int a, int b, int mode) {
    if (mode == MODE_SILENT) return;
    if (mode == MODE_LIST) {
        put_int(pos, 1);
        put_char(' ', 1);
        put_int(a, 1);
        put_char(' ', 1);
        put_int(b, 1);
        put_char('\n', 1);
    } else {
        put_str("differ: byte ", 1);
        put_int(pos, 1);
        put_str(", line ", 1);
        put_int(line, 1);
        put_char('\n', 1);
    }
}

int compare(int fd1, int fd2, int mode) {
    int a; int b;
    position = 0;
    line_no = 1;
    diff_count = 0;
    while (1) {
        a = get_byte(fd1);
        b = get_byte(fd2);
        position++;
        if (a == -1 && b == -1) break;
        if (a == -1 || b == -1) {
            if (mode != MODE_SILENT) put_line("EOF mismatch", 1);
            return 1;
        }
        if (a != b) {
            diff_count++;
            report_diff(position, line_no, a, b, mode);
            if (mode == MODE_NORMAL) return 1;
            if (mode == MODE_SILENT) return 1;
        }
        if (a == '\n') line_no++;
    }
    return diff_count > 0 ? 1 : 0;
}

int main() {
    char argbuf[128];
    char file1[128];
    char file2[128];
    int mode; int argi; int n; int fd1; int fd2; int rc;
    mode = MODE_NORMAL;
    argi = 0;
    n = __nargs();
    if (n < 2) return 2;
    __arg(0, argbuf);
    if (str_cmp(argbuf, "-l") == 0) { mode = MODE_LIST; argi = 1; }
    else if (str_cmp(argbuf, "-s") == 0) { mode = MODE_SILENT; argi = 1; }
    if (n < argi + 2) return 2;
    __arg(argi, file1);
    __arg(argi + 1, file2);
    fd1 = open_read(file1);
    fd2 = open_read(file2);
    if (fd1 < 0 || fd2 < 0) return 2;
    rc = compare(fd1, fd2, mode);
    if (mode != MODE_SILENT && rc == 0) put_line("identical", 1);
    flush_all();
    return rc;
}
"#;

/// Generates one run: two files (identical, slightly different, or very
/// different) and an option mix that exercises `-l`/`-s`/default.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("cmp", run);
    let base = english_text(&mut rng, 1200 + (run as usize % 8) * 500);
    let (other, args) = match run % 4 {
        0 => (base.clone(), vec!["a.txt".into(), "b.txt".into()]),
        1 => (
            mutate(&mut rng, &base, 2),
            vec!["-l".into(), "a.txt".into(), "b.txt".into()],
        ),
        2 => (
            mutate(&mut rng, &base, 30),
            vec!["-s".into(), "a.txt".into(), "b.txt".into()],
        ),
        _ => (
            mutate(&mut rng, &base, 8),
            vec!["-l".into(), "a.txt".into(), "b.txt".into()],
        ),
    };
    RunInput {
        inputs: vec![
            NamedFile::new("a.txt", base),
            NamedFile::new("b.txt", other),
        ],
        args,
    }
}
