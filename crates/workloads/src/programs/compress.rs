//! `compress` — LZW compression with 12-bit codes, open-addressing code
//! table, and bit-packed output (a faithful miniature of UNIX
//! `compress`).

use impact_vm::NamedFile;

use crate::textgen::{c_like_source, english_text, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs (same inputs as cccp).
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "same as cccp";

/// The program source.
pub const SOURCE: &str = r#"
/* compress: LZW with 12-bit codes */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __creat(char *path);

enum {
    BITS = 12,
    MAXCODE = 4096,        /* 1 << BITS */
    HSIZE = 5003,          /* hash table size (prime) */
    FIRST_FREE = 257,      /* 0..255 literals, 256 = clear */
    CLEAR_CODE = 256
};

int hash_key[HSIZE];    /* (prefix << 8) | byte, or -1 when empty */
int hash_code[HSIZE];
int next_code;
long bit_buf;
int bit_count;
long bytes_in;
long bytes_out;
int out_fd;

int hash_of(int prefix, int byte) {
    long h;
    h = (long)prefix * 31 + byte * 7 + 17;
    h = h % HSIZE;
    if (h < 0) h += HSIZE;
    return (int)h;
}

void table_clear() {
    int i;
    for (i = 0; i < HSIZE; i++) hash_key[i] = -1;
    next_code = FIRST_FREE;
}

/* Probes for (prefix, byte); returns the code or -1. */
int table_find(int prefix, int byte) {
    int h; int key;
    key = (prefix << 8) | byte;
    h = hash_of(prefix, byte);
    while (hash_key[h] != -1) {
        if (hash_key[h] == key) return hash_code[h];
        h++;
        if (h == HSIZE) h = 0;
    }
    return -1;
}

void table_insert(int prefix, int byte, int code) {
    int h; int key;
    key = (prefix << 8) | byte;
    h = hash_of(prefix, byte);
    while (hash_key[h] != -1) {
        h++;
        if (h == HSIZE) h = 0;
    }
    hash_key[h] = key;
    hash_code[h] = code;
}

void put_bits(int code) {
    bit_buf |= (long)code << bit_count;
    bit_count += BITS;
    while (bit_count >= 8) {
        out_byte((int)(bit_buf & 0xff), out_fd);
        bytes_out++;
        bit_buf >>= 8;
        bit_count -= 8;
    }
}

void flush_bits() {
    if (bit_count > 0) {
        out_byte((int)(bit_buf & 0xff), out_fd);
        bytes_out++;
        bit_buf = 0;
        bit_count = 0;
    }
}

void compress_stream(int in_fd) {
    int c; int prefix; int code;
    table_clear();
    prefix = in_byte(in_fd);
    if (prefix == -1) return;
    bytes_in = 1;
    while ((c = in_byte(in_fd)) != -1) {
        bytes_in++;
        code = table_find(prefix, c);
        if (code >= 0) {
            prefix = code;
        } else {
            put_bits(prefix);
            if (next_code < MAXCODE) {
                table_insert(prefix, c, next_code);
                next_code++;
            } else {
                put_bits(CLEAR_CODE);
                table_clear();
            }
            prefix = c;
        }
    }
    put_bits(prefix);
    flush_bits();
}

int main() {
    out_fd = open_write("out.Z");
    if (out_fd < 0) return 2;
    compress_stream(0);
    put_str("in ", 1);
    put_int(bytes_in, 1);
    put_str(" out ", 1);
    put_int(bytes_out, 1);
    put_char('\n', 1);
    flush_all();
    return bytes_out > 0 ? 0 : 1;
}
"#;

/// Generates one run: a compressible text on stdin.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("compress", run);
    let data = if run.is_multiple_of(2) {
        english_text(&mut rng, 2500 + (run as usize % 6) * 700)
    } else {
        c_like_source(&mut rng, 350 + (run as usize % 6) * 120)
    };
    RunInput {
        inputs: vec![NamedFile::new("stdin", data)],
        args: vec![],
    }
}
