//! `eqn` — troff equation preprocessor: passes ordinary lines through and
//! rewrites `.EQ`/`.EN` blocks (with `sup`, `sub`, `over`, and braces)
//! into explicit markup via a small recursive-descent parser.

use impact_vm::NamedFile;

use crate::textgen::{eqn_document, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs.
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "papers with .EQ options";

/// The program source.
pub const SOURCE: &str = r#"
/* eqn: equation preprocessor */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);

enum { LINELEN = 512, TOKLEN = 64 };
enum { T_EOF = 0, T_WORD = 1, T_NUM = 2, T_SUP = 3, T_SUB = 4, T_OVER = 5,
       T_LBRACE = 6, T_RBRACE = 7, T_OP = 8 };

char cur_line[LINELEN];
int cur_pos;
char tok_text[TOKLEN];
int tok_kind;
long eq_count;
long tok_count;

int classify_word(char *w) {
    if (str_cmp(w, "sup") == 0) return T_SUP;
    if (str_cmp(w, "sub") == 0) return T_SUB;
    if (str_cmp(w, "over") == 0) return T_OVER;
    return T_WORD;
}

void next_token() {
    int c; int n;
    while (is_space(cur_line[cur_pos])) cur_pos++;
    c = cur_line[cur_pos];
    if (c == 0) { tok_kind = T_EOF; tok_text[0] = 0; return; }
    tok_count++;
    if (c == '{') { tok_kind = T_LBRACE; cur_pos++; return; }
    if (c == '}') { tok_kind = T_RBRACE; cur_pos++; return; }
    if (is_digit(c)) {
        n = 0;
        while (is_digit(cur_line[cur_pos])) tok_text[n++] = cur_line[cur_pos++];
        tok_text[n] = 0;
        tok_kind = T_NUM;
        return;
    }
    if (is_alpha(c)) {
        n = 0;
        while (is_alnum(cur_line[cur_pos])) tok_text[n++] = cur_line[cur_pos++];
        tok_text[n] = 0;
        tok_kind = classify_word(tok_text);
        return;
    }
    tok_text[0] = c;
    tok_text[1] = 0;
    tok_kind = T_OP;
    cur_pos++;
}

void parse_expr();

/* primary := WORD | NUM | OP | '{' expr '}' */
void parse_primary() {
    if (tok_kind == T_LBRACE) {
        next_token();
        put_char('(', 1);
        parse_expr();
        put_char(')', 1);
        if (tok_kind == T_RBRACE) next_token();
        return;
    }
    if (tok_kind == T_WORD) {
        put_str("VAR<", 1);
        put_str(tok_text, 1);
        put_char('>', 1);
        next_token();
        return;
    }
    if (tok_kind == T_NUM) {
        put_str(tok_text, 1);
        next_token();
        return;
    }
    if (tok_kind == T_OP) {
        put_str(tok_text, 1);
        next_token();
        return;
    }
    /* sup/sub/over with no left operand, or EOF: emit placeholder */
    put_char('?', 1);
    if (tok_kind != T_EOF) next_token();
}

/* scripted := primary (sup primary | sub primary)* */
void parse_scripted() {
    parse_primary();
    while (tok_kind == T_SUP || tok_kind == T_SUB) {
        if (tok_kind == T_SUP) put_str("^{", 1);
        else put_str("_{", 1);
        next_token();
        parse_primary();
        put_char('}', 1);
    }
}

/* fraction := scripted (over scripted)* */
void parse_fraction() {
    parse_scripted();
    while (tok_kind == T_OVER) {
        put_str(" / ", 1);
        next_token();
        parse_scripted();
    }
}

/* expr := fraction (fraction)*  — juxtaposition and operators */
void parse_expr() {
    parse_fraction();
    while (tok_kind != T_EOF && tok_kind != T_RBRACE) {
        put_char(' ', 1);
        parse_fraction();
    }
}

int starts_with(char *line, char *prefix) {
    return str_ncmp(line, prefix, str_len(prefix)) == 0;
}

int main() {
    char line[LINELEN];
    int in_eq;
    in_eq = 0;
    while (read_line(0, line, LINELEN) != -1) {
        if (starts_with(line, ".EQ")) {
            in_eq = 1;
            eq_count++;
            put_line("[eq]", 1);
        } else if (starts_with(line, ".EN")) {
            in_eq = 0;
            put_line("[/eq]", 1);
        } else if (in_eq) {
            str_cpy(cur_line, line);
            cur_pos = 0;
            next_token();
            parse_expr();
            put_char('\n', 1);
        } else {
            put_line(line, 1);
        }
    }
    put_str("; equations ", 1);
    put_int(eq_count, 1);
    put_str(" tokens ", 1);
    put_int(tok_count, 1);
    put_char('\n', 1);
    flush_all();
    return 0;
}
"#;

/// Generates one run: a troff-ish document with equation blocks.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("eqn", run);
    let doc = eqn_document(&mut rng, 30 + (run as usize % 10) * 12);
    RunInput {
        inputs: vec![NamedFile::new("stdin", doc)],
        args: vec![],
    }
}
