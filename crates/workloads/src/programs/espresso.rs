//! `espresso` — two-level logic minimization kernel: reads a PLA truth
//! table and iteratively merges distance-1 cubes and removes covered
//! cubes (the inner loops of the real espresso's EXPAND/IRREDUNDANT
//! phases).

use impact_vm::NamedFile;

use crate::textgen::{pla_table, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs.
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "original espresso benchmarks";

/// The program source.
pub const SOURCE: &str = r#"
/* espresso: cube-list logic minimization */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);

enum { MAXIN = 24, MAXTERMS = 600, LINELEN = 128 };
enum { V0 = 0, V1 = 1, VX = 2 };

char cube[MAXTERMS][MAXIN];
int live[MAXTERMS];
int ncubes;
int ninputs;
long merge_count;
long cover_count;

int char_to_val(int c) {
    if (c == '0') return V0;
    if (c == '1') return V1;
    return VX;
}

int val_to_char(int v) {
    if (v == V0) return '0';
    if (v == V1) return '1';
    return '-';
}

/* a covers b: every position of a is don't-care or equal to b's. */
int covers(int a, int b) {
    int i;
    for (i = 0; i < ninputs; i++)
        if (cube[a][i] != VX && cube[a][i] != cube[b][i])
            return 0;
    return 1;
}

/* Number of positions where both cubes are specified and differ. */
int distance(int a, int b) {
    int i; int d;
    d = 0;
    for (i = 0; i < ninputs; i++)
        if (cube[a][i] != VX && cube[b][i] != VX && cube[a][i] != cube[b][i])
            d++;
    return d;
}

/* Positions where the don't-care patterns differ. */
int shape_diff(int a, int b) {
    int i; int d;
    d = 0;
    for (i = 0; i < ninputs; i++) {
        if ((cube[a][i] == VX) != (cube[b][i] == VX)) d++;
    }
    return d;
}

/* Merge b into a across their single differing position. */
void merge_into(int a, int b) {
    int i;
    for (i = 0; i < ninputs; i++)
        if (cube[a][i] != cube[b][i])
            cube[a][i] = VX;
    live[b] = 0;
    merge_count++;
}

int try_merge_pass() {
    int i; int j; int changed;
    changed = 0;
    for (i = 0; i < ncubes; i++) {
        if (!live[i]) continue;
        for (j = i + 1; j < ncubes; j++) {
            if (!live[j]) continue;
            if (distance(i, j) == 1 && shape_diff(i, j) == 0) {
                merge_into(i, j);
                changed = 1;
            }
        }
    }
    return changed;
}

int remove_covered_pass() {
    int i; int j; int changed;
    changed = 0;
    for (i = 0; i < ncubes; i++) {
        if (!live[i]) continue;
        for (j = 0; j < ncubes; j++) {
            if (i == j || !live[j]) continue;
            if (covers(i, j)) {
                live[j] = 0;
                cover_count++;
                changed = 1;
            }
        }
    }
    return changed;
}

int literal_count() {
    int i; int k; int n;
    n = 0;
    for (i = 0; i < ncubes; i++) {
        if (!live[i]) continue;
        for (k = 0; k < ninputs; k++)
            if (cube[i][k] != VX) n++;
    }
    return n;
}

void read_pla() {
    char line[LINELEN];
    int i;
    ninputs = 0;
    ncubes = 0;
    while (read_line(0, line, LINELEN) != -1) {
        if (line[0] == '.') {
            if (line[1] == 'i') ninputs = a_to_i(line + 2);
            if (line[1] == 'e') break;
            continue;
        }
        if (line[0] == 0) continue;
        if (ncubes >= MAXTERMS) continue;
        for (i = 0; i < ninputs && line[i]; i++)
            cube[ncubes][i] = char_to_val(line[i]);
        live[ncubes] = 1;
        ncubes++;
    }
}

void write_result() {
    int i; int k; int alive;
    alive = 0;
    for (i = 0; i < ncubes; i++) {
        if (!live[i]) continue;
        alive++;
        for (k = 0; k < ninputs; k++)
            put_char(val_to_char(cube[i][k]), 1);
        put_char('\n', 1);
    }
    put_str(".terms ", 1);
    put_int(alive, 1);
    put_str(" .lits ", 1);
    put_int(literal_count(), 1);
    put_str(" .merges ", 1);
    put_int(merge_count, 1);
    put_str(" .covered ", 1);
    put_int(cover_count, 1);
    put_char('\n', 1);
}

/* The minimization schedule is a table of pass functions, invoked
   through pointers (as espresso's own phase drivers are). */
int (*passes[2])(void) = {try_merge_pass, remove_covered_pass};

int main() {
    int rounds; int p;
    read_pla();
    if (ninputs == 0 || ninputs > MAXIN) return 1;
    rounds = 0;
    while (rounds < 40) {
        int changed;
        changed = 0;
        for (p = 0; p < 2; p++)
            if (passes[p]()) changed = 1;
        if (!changed) break;
        rounds++;
    }
    write_result();
    flush_all();
    return 0;
}
"#;

/// Generates one run: a PLA table of growing size.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("espresso", run);
    let inputs = 8 + (run as usize % 5) * 2;
    let terms = 120 + (run as usize % 7) * 45;
    RunInput {
        inputs: vec![NamedFile::new("stdin", pla_table(&mut rng, inputs, terms))],
        args: vec![],
    }
}
