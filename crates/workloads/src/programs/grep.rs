//! `grep` — regular-expression line matcher supporting `.` `*` `^` `$`
//! and character classes, with `-v`, `-c`, and `-n` options (the option
//! mix the paper exercises: `.+"^$` patterns).

use impact_vm::NamedFile;

use crate::textgen::{english_text, rng_for, word};
use crate::RunInput;

/// Paper Table 1: 20 runs.
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "exercised .*^$[] options";

/// The program source.
pub const SOURCE: &str = r#"
/* grep: regular expression search */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __nargs(void);
extern int __arg(int i, char *buf);

enum { MAXTOK = 64, LINELEN = 1024, CLSBYTES = 16 };
enum { TK_CHAR = 0, TK_ANY = 1, TK_CLASS = 2 };

int ttype[MAXTOK];
int tch[MAXTOK];
char tcls[MAXTOK][CLSBYTES];  /* 128-bit membership bitmaps */
int tneg[MAXTOK];
int tstar[MAXTOK];
int ntok;
int anchor_start;
int anchor_end;

int opt_invert;
int opt_count;
int opt_number;

void cls_set(int t, int c) {
    tcls[t][(c & 127) >> 3] |= 1 << (c & 7);
}

int cls_get(int t, int c) {
    return (tcls[t][(c & 127) >> 3] >> (c & 7)) & 1;
}

/* Compiles the pattern; returns 0 on malformed patterns. */
int compile(char *pat) {
    int i; int t; int c;
    i = 0;
    ntok = 0;
    anchor_start = 0;
    anchor_end = 0;
    if (pat[i] == '^') { anchor_start = 1; i++; }
    while (pat[i]) {
        if (pat[i] == '$' && pat[i + 1] == 0) { anchor_end = 1; break; }
        if (ntok >= MAXTOK) return 0;
        t = ntok;
        tstar[t] = 0;
        tneg[t] = 0;
        if (pat[i] == '.') {
            ttype[t] = TK_ANY;
            i++;
        } else if (pat[i] == '[') {
            ttype[t] = TK_CLASS;
            i++;
            if (pat[i] == '^') { tneg[t] = 1; i++; }
            while (pat[i] && pat[i] != ']') {
                if (pat[i + 1] == '-' && pat[i + 2] && pat[i + 2] != ']') {
                    for (c = pat[i]; c <= pat[i + 2]; c++) cls_set(t, c);
                    i += 3;
                } else {
                    cls_set(t, pat[i]);
                    i++;
                }
            }
            if (pat[i] != ']') return 0;
            i++;
        } else {
            ttype[t] = TK_CHAR;
            if (pat[i] == '\\' && pat[i + 1]) i++;
            tch[t] = pat[i];
            i++;
        }
        if (pat[i] == '*') { tstar[t] = 1; i++; }
        else if (pat[i] == '+') {
            /* a+ == a a* : duplicate the token with a star */
            if (ntok + 1 >= MAXTOK) return 0;
            ttype[t + 1] = ttype[t];
            tch[t + 1] = tch[t];
            tneg[t + 1] = tneg[t];
            for (c = 0; c < CLSBYTES; c++) tcls[t + 1][c] = tcls[t][c];
            tstar[t + 1] = 1;
            ntok++;
            i++;
        }
        ntok++;
    }
    return 1;
}

/* Does token t match character c? The hottest function in the program. */
int tok_match(int t, int c) {
    if (c == 0) return 0;
    if (ttype[t] == TK_CHAR) return tch[t] == c;
    if (ttype[t] == TK_ANY) return 1;
    return cls_get(t, c) != tneg[t];
}

int match_here(int t, char *line, int j);

/* Greedy star: consume as many as possible, then back off. */
int match_star(int t, char *line, int j) {
    int k;
    k = j;
    while (line[k] && tok_match(t, line[k])) k++;
    while (k >= j) {
        if (match_here(t + 1, line, k)) return 1;
        k--;
    }
    return 0;
}

int match_here(int t, char *line, int j) {
    while (t < ntok) {
        if (tstar[t]) return match_star(t, line, j);
        if (!tok_match(t, line[j])) return 0;
        t++;
        j++;
    }
    if (anchor_end) return line[j] == 0;
    return 1;
}

int match_line(char *line) {
    int j;
    if (anchor_start) return match_here(0, line, 0);
    j = 0;
    while (1) {
        if (match_here(0, line, j)) return 1;
        if (!line[j]) return 0;
        j++;
    }
}

int main() {
    char pat[256];
    char opt[16];
    char line[LINELEN];
    int argi; int nargs; int hit; long matched; long lineno;
    nargs = __nargs();
    if (nargs < 1) return 2;
    argi = 0;
    opt_invert = 0;
    opt_count = 0;
    opt_number = 0;
    while (argi < nargs - 1) {
        __arg(argi, opt);
        if (str_cmp(opt, "-v") == 0) opt_invert = 1;
        else if (str_cmp(opt, "-c") == 0) opt_count = 1;
        else if (str_cmp(opt, "-n") == 0) opt_number = 1;
        else break;
        argi++;
    }
    __arg(argi, pat);
    if (!compile(pat)) return 2;
    matched = 0;
    lineno = 0;
    while (read_line(0, line, LINELEN) != -1) {
        lineno++;
        hit = match_line(line);
        if (opt_invert) hit = !hit;
        if (hit) {
            matched++;
            if (!opt_count) {
                if (opt_number) {
                    put_int(lineno, 1);
                    put_char(':', 1);
                }
                put_line(line, 1);
            }
        }
    }
    if (opt_count) {
        put_int(matched, 1);
        put_char('\n', 1);
    }
    flush_all();
    return matched > 0 ? 0 : 1;
}
"#;

/// Generates one run: a text corpus plus a pattern/option combination
/// cycling through literal, class, star, and anchor forms.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("grep", run);
    let text = english_text(&mut rng, 2500 + (run as usize % 6) * 800);
    let w = word(&mut rng);
    let pattern = match run % 8 {
        0 => w.to_string(),
        1 => format!("^{w}"),
        2 => format!("{w}$"),
        3 => "c[ao]l[lt]".to_string(),
        4 => format!("{}.*{}", &w[..w.len().min(3)], word(&mut rng)),
        5 => "[a-m]o[n-z]+".to_string(),
        6 => "t.e".to_string(),
        _ => format!("[^aeiou]{w}"),
    };
    let mut args: Vec<String> = Vec::new();
    match run % 5 {
        1 => args.push("-c".into()),
        2 => args.push("-n".into()),
        3 => args.push("-v".into()),
        4 => {
            args.push("-c".into());
            args.push("-v".into());
        }
        _ => {}
    }
    args.push(pattern);
    RunInput {
        inputs: vec![NamedFile::new("stdin", text)],
        args,
    }
}
