//! `lex` — a generated lexical analyzer: builds a keyword trie and
//! character-class tables from a spec file at startup, then scans a large
//! token stream with the table-driven inner loop that dominates real
//! lex-generated scanners.

use impact_vm::NamedFile;

use crate::textgen::{lexer_input, rng_for};
use crate::RunInput;

/// Paper Table 1: 4 runs (lex has by far the largest dynamic counts).
pub const RUNS: u32 = 4;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "lexers for C, Lisp, awk, and pic";

/// The program source.
pub const SOURCE: &str = r#"
/* lex: table-driven scanner built from a keyword spec */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __open(char *path);

enum { MAXSTATES = 512, ALPHA = 26, LINELEN = 128, MAXKW = 64 };
enum { T_IDENT = 0, T_NUMBER = 1, T_OP = 2, T_KEYWORD = 3 };

int trie_next[MAXSTATES][ALPHA];
int trie_final[MAXSTATES];   /* 0 = not a keyword, else keyword id + 1 */
int nstates;

long counts[4];
long total_tokens;
long total_chars;

int cur_char;

void advance(int fd) {
    cur_char = in_byte(fd);
    total_chars++;
}

int letter_index(int c) {
    int l;
    l = to_lower(c);
    if (l >= 'a' && l <= 'z') return l - 'a';
    return -1;
}

void trie_insert(char *word, int id) {
    int s; int i; int li;
    s = 0;
    for (i = 0; word[i]; i++) {
        li = letter_index(word[i]);
        if (li < 0) return;
        if (trie_next[s][li] == 0) {
            if (nstates >= MAXSTATES) return;
            trie_next[s][li] = nstates;
            s = nstates;
            nstates++;
        } else {
            s = trie_next[s][li];
        }
    }
    trie_final[s] = id + 1;
}

/* Walks the trie over a scanned identifier; 0 if not a keyword. */
int trie_lookup(char *word) {
    int s; int i; int li;
    s = 0;
    for (i = 0; word[i]; i++) {
        li = letter_index(word[i]);
        if (li < 0) return 0;
        s = trie_next[s][li];
        if (s == 0) return 0;
    }
    return trie_final[s];
}

void load_spec() {
    char line[LINELEN];
    int fd; int id;
    fd = open_read("spec");
    if (fd < 0) return;
    nstates = 1;
    id = 0;
    while (read_line(fd, line, LINELEN) != -1) {
        if (line[0] == 0) continue;
        trie_insert(line, id);
        id++;
    }
}

int scan_ident(int fd, char *buf) {
    int n;
    n = 0;
    while (is_alnum(cur_char) || cur_char == '_') {
        if (n < LINELEN - 1) buf[n++] = cur_char;
        advance(fd);
    }
    buf[n] = 0;
    return n;
}

void scan_number(int fd) {
    while (is_digit(cur_char)) advance(fd);
}

void scan_op(int fd) {
    int first;
    first = cur_char;
    advance(fd);
    /* two-character operators */
    if ((first == '=' || first == '<' || first == '>' || first == '!') && cur_char == '=')
        advance(fd);
}

void note_token(int kind) {
    counts[kind]++;
    total_tokens++;
}

void scan_stream(int fd) {
    char word[LINELEN];
    advance(fd);
    while (cur_char != -1) {
        if (is_space(cur_char)) {
            advance(fd);
        } else if (is_alpha(cur_char) || cur_char == '_') {
            scan_ident(fd, word);
            if (trie_lookup(word)) note_token(T_KEYWORD);
            else note_token(T_IDENT);
        } else if (is_digit(cur_char)) {
            scan_number(fd);
            note_token(T_NUMBER);
        } else {
            scan_op(fd);
            note_token(T_OP);
        }
    }
}

int main() {
    load_spec();
    scan_stream(0);
    put_str("ident ", 1);
    put_int(counts[T_IDENT], 1);
    put_str(" num ", 1);
    put_int(counts[T_NUMBER], 1);
    put_str(" op ", 1);
    put_int(counts[T_OP], 1);
    put_str(" kw ", 1);
    put_int(counts[T_KEYWORD], 1);
    put_str(" total ", 1);
    put_int(total_tokens, 1);
    put_char('\n', 1);
    flush_all();
    return total_tokens > 0 ? 0 : 1;
}
"#;

/// Generates one run: a keyword spec (the "language") and a large token
/// stream in that language.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("lex", run);
    let spec: &[&str] = match run % 4 {
        0 => &[
            "if", "else", "while", "for", "return", "int", "char", "break", "continue", "switch",
            "case", "struct",
        ],
        1 => &[
            "defun", "lambda", "setq", "cond", "car", "cdr", "cons", "let", "quote",
        ],
        2 => &[
            "begin", "end", "print", "next", "getline", "function", "delete", "in",
        ],
        _ => &[
            "line", "box", "circle", "arrow", "move", "left", "right", "up", "down",
        ],
    };
    let spec_text: Vec<u8> = spec.join("\n").into_bytes();
    let tokens = 18_000 + (run as usize % 4) * 9_000;
    RunInput {
        inputs: vec![
            NamedFile::new("spec", spec_text),
            NamedFile::new("stdin", lexer_input(&mut rng, tokens)),
        ],
        args: vec![],
    }
}
