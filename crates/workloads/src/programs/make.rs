//! `make` — dependency-driven build planner: parses a makefile, reads a
//! timestamp table, and recursively decides which targets are out of date,
//! printing the commands it would run.

use impact_vm::NamedFile;

use crate::textgen::{makefile, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs.
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "makefiles for cccp, compress, etc.";

/// The program source.
pub const SOURCE: &str = r#"
/* make: dependency analysis and build planning */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __open(char *path);
extern int __nargs(void);
extern int __arg(int i, char *buf);

enum { MAXT = 128, MAXD = 8, NAMELEN = 32, CMDLEN = 96, LINELEN = 256 };

char tname[MAXT][NAMELEN];
int tdeps[MAXT][MAXD];
int tndeps[MAXT];
char tcmd[MAXT][CMDLEN];
long ttime[MAXT];
int tbuilt[MAXT];     /* 0 unknown, 1 visiting, 2 fresh, 3 rebuilt */
int ntargets;
long commands_run;
long now_clock;       /* monotonically increasing build clock */

int find_target(char *name) {
    int i;
    for (i = 0; i < ntargets; i++)
        if (str_cmp(tname[i], name) == 0)
            return i;
    return -1;
}

int intern_target(char *name) {
    int i;
    i = find_target(name);
    if (i >= 0) return i;
    if (ntargets >= MAXT) return 0;
    i = ntargets++;
    str_ncpy(tname[i], name, NAMELEN - 1);
    tndeps[i] = 0;
    tcmd[i][0] = 0;
    ttime[i] = 0;
    return i;
}

/* Splits a "target: dep dep" line. */
void parse_rule(char *line) {
    char name[NAMELEN];
    int i; int n; int t; int d;
    i = 0;
    n = 0;
    while (line[i] && line[i] != ':') {
        if (n < NAMELEN - 1 && !is_space(line[i])) name[n++] = line[i];
        i++;
    }
    name[n] = 0;
    if (line[i] != ':') return;
    i++;
    t = intern_target(name);
    while (line[i]) {
        while (is_space(line[i])) i++;
        if (!line[i]) break;
        n = 0;
        while (line[i] && !is_space(line[i])) {
            if (n < NAMELEN - 1) name[n++] = line[i];
            i++;
        }
        name[n] = 0;
        d = intern_target(name);
        if (tndeps[t] < MAXD) tdeps[t][tndeps[t]++] = d;
    }
}

void parse_makefile(int fd) {
    char line[LINELEN];
    int last;
    last = -1;
    while (read_line(fd, line, LINELEN) != -1) {
        if (line[0] == '\t') {
            if (last >= 0) str_ncpy(tcmd[last], line + 1, CMDLEN - 1);
        } else if (line[0] && line[0] != '#') {
            parse_rule(line);
            last = find_colon_target(line);
        }
    }
}

/* Re-finds the target named before ':' (helper for command attachment). */
int find_colon_target(char *line) {
    char name[NAMELEN];
    int i; int n;
    i = 0;
    n = 0;
    while (line[i] && line[i] != ':') {
        if (n < NAMELEN - 1 && !is_space(line[i])) name[n++] = line[i];
        i++;
    }
    name[n] = 0;
    return find_target(name);
}

void read_stamps(int fd) {
    char line[LINELEN];
    char name[NAMELEN];
    int i; int n; int t;
    while (read_line(fd, line, LINELEN) != -1) {
        i = 0;
        n = 0;
        while (line[i] && !is_space(line[i])) {
            if (n < NAMELEN - 1) name[n++] = line[i];
            i++;
        }
        name[n] = 0;
        t = find_target(name);
        if (t >= 0) ttime[t] = a_to_i(line + i);
    }
}

/* Command execution is pluggable (-n dry run prints, -q only counts),
   selected once through a function pointer — as real make dispatches
   its job runner. */
void exec_print(char *cmd) {
    put_line(cmd, 1);
    commands_run++;
}

void exec_count(char *cmd) {
    commands_run++;
}

void (*executor)(char *cmd) = exec_print;

/* Returns the (possibly updated) timestamp of target t, rebuilding it
   if any dependency is newer. Classic recursive make traversal. */
long build(int t) {
    long newest; long dep_time; int i; int need;
    if (tbuilt[t] == 2 || tbuilt[t] == 3) return ttime[t];
    if (tbuilt[t] == 1) return ttime[t]; /* cycle: treat as fresh */
    tbuilt[t] = 1;
    newest = 0;
    for (i = 0; i < tndeps[t]; i++) {
        dep_time = build(tdeps[t][i]);
        if (dep_time > newest) newest = dep_time;
    }
    need = 0;
    if (ttime[t] == 0) need = 1;            /* missing */
    if (newest > ttime[t]) need = 1;        /* stale */
    if (need && tcmd[t][0]) {
        executor(tcmd[t]);
        /* a rebuilt target is newer than everything seen so far */
        ttime[t] = now_clock++;
        tbuilt[t] = 3;
    } else {
        tbuilt[t] = 2;
    }
    return ttime[t];
}

int main() {
    char opt[16];
    int fd; int root;
    if (__nargs() > 0) {
        __arg(0, opt);
        if (str_cmp(opt, "-q") == 0) executor = exec_count;
    }
    fd = open_read("Makefile");
    if (fd < 0) return 2;
    parse_makefile(fd);
    fd = open_read("stamps");
    if (fd >= 0) read_stamps(fd);
    /* start the build clock past every recorded timestamp */
    now_clock = 1;
    {
        int t;
        for (t = 0; t < ntargets; t++)
            if (ttime[t] >= now_clock) now_clock = ttime[t] + 1;
    }
    root = find_target("all");
    if (root < 0) {
        if (ntargets == 0) return 1;
        root = 0;
    }
    build(root);
    put_str("; commands ", 1);
    put_int(commands_run, 1);
    put_str(" targets ", 1);
    put_int(ntargets, 1);
    put_char('\n', 1);
    flush_all();
    return 0;
}
"#;

/// Generates one run: a makefile plus a timestamp table where a random
/// subset of targets is stale.
pub fn gen(run: u64) -> RunInput {
    use rand::Rng;
    let mut rng = rng_for("make", run);
    let ntargets = 25 + (run as usize % 8) * 10;
    let mk = makefile(&mut rng, ntargets);
    // Timestamps: parse target names back out of the makefile text.
    let text = String::from_utf8(mk.clone()).expect("ascii");
    let mut stamps = Vec::new();
    for line in text.lines() {
        if let Some((name, _)) = line.split_once(':') {
            if !line.starts_with('\t') {
                let t: u32 = if rng.gen_bool(0.3) {
                    0 // missing → must build
                } else {
                    rng.gen_range(1..1000)
                };
                stamps.extend_from_slice(format!("{name} {t}\n").as_bytes());
            }
        }
    }
    let args = if run % 4 == 3 {
        vec!["-q".to_string()]
    } else {
        vec![]
    };
    RunInput {
        inputs: vec![
            NamedFile::new("Makefile", mk),
            NamedFile::new("stamps", stamps),
        ],
        args,
    }
}
