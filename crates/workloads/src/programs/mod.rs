//! The twelve benchmark programs, one module each.

pub mod cccp;
pub mod cmp;
pub mod compress;
pub mod eqn;
pub mod espresso;
pub mod grep;
pub mod lex;
pub mod make;
pub mod tar;
pub mod tee;
pub mod wc;
pub mod yacc;
