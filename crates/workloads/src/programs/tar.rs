//! `tar` — archive packer/unpacker with a simple textual header format
//! (`name\n size\n bytes...`), a per-file checksum, and block copying.

use impact_vm::NamedFile;

use crate::textgen::{c_like_source, english_text, rng_for};
use crate::RunInput;

/// Paper Table 1: 14 runs.
pub const RUNS: u32 = 14;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "save/extract files";

/// The program source.
pub const SOURCE: &str = r#"
/* tar: save (c) and extract (x) archives */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);
extern int __open(char *path);
extern int __creat(char *path);
extern int __close(int fd);
extern int __ninputs(void);
extern int __input_name(int i, char *buf);
extern int __nargs(void);
extern int __arg(int i, char *buf);

enum { NAMELEN = 64, LINELEN = 128 };

long files_done;
long bytes_done;
long checksum_acc;

void check_byte(int c) {
    checksum_acc = (checksum_acc * 31 + c) & 0xffffff;
}

/* Copies n bytes from in to out, checksumming. */
void copy_bytes(int in, int out, long n) {
    int c;
    while (n > 0) {
        c = in_byte(in);
        if (c == -1) break;
        check_byte(c);
        out_byte(c, out);
        bytes_done++;
        n--;
    }
}

long file_size(char *name) {
    int fd; long n;
    fd = open_read(name);
    if (fd < 0) return -1;
    n = 0;
    while (in_byte(fd) != -1) n++;
    close_fd(fd);
    return n;
}

void write_header(int out, char *name, long size) {
    char num[24];
    put_str(name, out);
    put_char('\n', out);
    int_to_str(size, num);
    put_str(num, out);
    put_char('\n', out);
}

void save_one(int out, char *name) {
    long size; int fd;
    size = file_size(name);
    if (size < 0) return;
    write_header(out, name, size);
    fd = open_read(name);
    checksum_acc = 0;
    copy_bytes(fd, out, size);
    close_fd(fd);
    files_done++;
}

void do_create() {
    char name[NAMELEN];
    int out; int i; int n;
    out = open_write("archive.tar");
    n = __ninputs();
    for (i = 0; i < n; i++) {
        __input_name(i, name);
        /* don't pack the archive itself or control files */
        if (str_cmp(name, "archive.tar") == 0) continue;
        save_one(out, name);
    }
    close_fd(out);
}

void do_extract() {
    char name[LINELEN];
    char sizebuf[LINELEN];
    int in; int out; long size;
    in = open_read("archive.tar");
    if (in < 0) return;
    while (read_line(in, name, LINELEN) != -1) {
        if (name[0] == 0) break;
        if (read_line(in, sizebuf, LINELEN) == -1) break;
        size = a_to_i(sizebuf);
        out = open_write(name);
        checksum_acc = 0;
        copy_bytes(in, out, size);
        close_fd(out);
        files_done++;
    }
    close_fd(in);
}

int main() {
    char mode[16];
    if (__nargs() < 1) return 2;
    __arg(0, mode);
    if (str_cmp(mode, "c") == 0) do_create();
    else if (str_cmp(mode, "x") == 0) do_extract();
    else return 2;
    put_str("; files ", 1);
    put_int(files_done, 1);
    put_str(" bytes ", 1);
    put_int(bytes_done, 1);
    put_str(" sum ", 1);
    put_int(checksum_acc, 1);
    put_char('\n', 1);
    flush_all();
    return files_done > 0 ? 0 : 1;
}
"#;

/// Generates one run: either a set of files to pack (`c`) or an archive
/// in the program's own format to extract (`x`).
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("tar", run);
    let nfiles = 3 + (run as usize % 4);
    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    for i in 0..nfiles {
        let data = if i % 2 == 0 {
            english_text(&mut rng, 300 + (run as usize % 5) * 150)
        } else {
            c_like_source(&mut rng, 60 + (run as usize % 5) * 25)
        };
        files.push((format!("f{i}.txt"), data));
    }
    if run.is_multiple_of(2) {
        // Create mode: hand the files over directly.
        RunInput {
            inputs: files
                .into_iter()
                .map(|(n, d)| NamedFile::new(n, d))
                .collect(),
            args: vec!["c".into()],
        }
    } else {
        // Extract mode: build the archive in the program's own format.
        let mut archive = Vec::new();
        for (name, data) in &files {
            archive.extend_from_slice(name.as_bytes());
            archive.push(b'\n');
            archive.extend_from_slice(data.len().to_string().as_bytes());
            archive.push(b'\n');
            archive.extend_from_slice(data);
        }
        RunInput {
            inputs: vec![NamedFile::new("archive.tar", archive)],
            args: vec!["x".into()],
        }
    }
}
