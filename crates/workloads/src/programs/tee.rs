//! `tee` — copy stdin to stdout and to every named output file, using
//! block I/O. Like the real `tee`, almost all of its work is in system
//! calls: the paper reports 0% call elimination and only 24K IL per run —
//! inlining rightly finds nothing to do here.

use impact_vm::NamedFile;

use crate::textgen::{c_like_source, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs (same inputs as cccp).
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "same as cccp";

/// The program source.
pub const SOURCE: &str = r#"
/* tee: copy stdin to stdout and the named files */
extern int __fread(int fd, char *buf, int n);
extern int __fwrite(int fd, char *buf, int n);
extern int __creat(char *path);
extern int __close(int fd);
extern int __nargs(void);
extern int __arg(int i, char *buf);

enum { BUFSZ = 256, MAXOUT = 8 };

int main() {
    char buf[BUFSZ];
    char name[128];
    int fds[MAXOUT];
    int nout; int i; int n;
    long total;
    nout = __nargs();
    if (nout > MAXOUT) nout = MAXOUT;
    for (i = 0; i < nout; i++) {
        __arg(i, name);
        fds[i] = __creat(name);
    }
    total = 0;
    while ((n = __fread(0, buf, BUFSZ)) > 0) {
        __fwrite(1, buf, n);
        for (i = 0; i < nout; i++)
            if (fds[i] >= 0) __fwrite(fds[i], buf, n);
        total += n;
    }
    for (i = 0; i < nout; i++)
        if (fds[i] >= 0) __close(fds[i]);
    return total > 0 ? 0 : 1;
}
"#;

/// Generates one run: a C-like file on stdin and one or two output names.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("tee", run);
    let data = c_like_source(&mut rng, 1500 + (run as usize % 10) * 400);
    let mut args = vec!["copy1.txt".to_string()];
    if run.is_multiple_of(3) {
        args.push("copy2.txt".to_string());
    }
    RunInput {
        inputs: vec![NamedFile::new("stdin", data)],
        args,
    }
}
