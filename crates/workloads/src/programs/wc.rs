//! `wc` — line/word/character counts over block-read buffers, with the
//! hot state machine directly in `main` (as in the real 1989 `wc`):
//! the paper reports ~0% call elimination and very long stretches of
//! straight-line execution between calls.

use impact_vm::NamedFile;

use crate::textgen::{c_like_source, english_text, rng_for};
use crate::RunInput;

/// Paper Table 1: 20 runs (same inputs as cccp).
pub const RUNS: u32 = 20;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "same as cccp";

/// The program source.
pub const SOURCE: &str = r#"
/* wc: count lines, words, characters */
extern int __fread(int fd, char *buf, int n);
extern int __open(char *path);
extern int __close(int fd);
extern int __nargs(void);
extern int __arg(int i, char *buf);

enum { BUFSZ = 4096 };

long total_lines;
long total_words;
long total_chars;

void report(char *name, long l, long w, long c) {
    put_int(l, 1);
    put_char(' ', 1);
    put_int(w, 1);
    put_char(' ', 1);
    put_int(c, 1);
    put_char(' ', 1);
    put_line(name, 1);
}

int main() {
    char buf[BUFSZ];
    char name[128];
    long lines; long words; long chars;
    int nfiles; int fi; int fd; int n; int i; int c; int in_word;
    nfiles = __nargs();
    if (nfiles == 0) return 2;
    for (fi = 0; fi < nfiles; fi++) {
        __arg(fi, name);
        fd = __open(name);
        if (fd < 0) continue;
        lines = 0;
        words = 0;
        chars = 0;
        in_word = 0;
        /* the hot loop: branch-heavy, call-free */
        while ((n = __fread(fd, buf, BUFSZ)) > 0) {
            for (i = 0; i < n; i++) {
                c = buf[i];
                chars++;
                if (c == '\n') lines++;
                if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                    in_word = 0;
                } else if (!in_word) {
                    in_word = 1;
                    words++;
                }
            }
        }
        __close(fd);
        report(name, lines, words, chars);
        total_lines += lines;
        total_words += words;
        total_chars += chars;
    }
    if (nfiles > 1) report("total", total_lines, total_words, total_chars);
    flush_all();
    return 0;
}
"#;

/// Generates one run: two or three files to count.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("wc", run);
    let mut inputs = vec![
        NamedFile::new(
            "a.c",
            c_like_source(&mut rng, 200 + (run as usize % 8) * 80),
        ),
        NamedFile::new(
            "b.txt",
            english_text(&mut rng, 1500 + (run as usize % 5) * 400),
        ),
    ];
    let mut args = vec!["a.c".to_string(), "b.txt".to_string()];
    if run.is_multiple_of(2) {
        inputs.push(NamedFile::new(
            "c.txt",
            english_text(&mut rng, 800 + (run as usize % 7) * 300),
        ));
        args.push("c.txt".to_string());
    }
    RunInput { inputs, args }
}
