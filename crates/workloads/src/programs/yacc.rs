//! `yacc` — LR(0) parser-generator kernel: reads a grammar, interns
//! symbols, computes nullable/FIRST sets to a fixpoint, and constructs
//! the LR(0) item-set automaton via closure/goto with state
//! deduplication.

use impact_vm::NamedFile;

use crate::textgen::{grammar, rng_for};
use crate::RunInput;

/// Paper Table 1: 8 runs.
pub const RUNS: u32 = 8;

/// Paper Table 1 input description.
pub const DESCRIPTION: &str = "grammar for a C compiler, etc.";

/// The program source.
pub const SOURCE: &str = r#"
/* yacc: LR(0) automaton construction */
extern int __fgetc(int fd);
extern int __fputc(int c, int fd);

enum { MAXSYM = 96, MAXRULE = 160, MAXRHS = 6, NAMELEN = 16,
       MAXITEM = 48, MAXSTATE = 160, LINELEN = 256, SETBYTES = 12 };

char sym_name[MAXSYM][NAMELEN];
int sym_is_term[MAXSYM];
int nsyms;

int rule_lhs[MAXRULE];
int rule_rhs[MAXRULE][MAXRHS];
int rule_len[MAXRULE];
int nrules;

int nullable[MAXSYM];
char first_set[MAXSYM][SETBYTES];

/* A state is a set of items; an item is rule * 32 + dot. */
int state_items[MAXSTATE][MAXITEM];
int state_nitems[MAXSTATE];
int nstates;

long closure_steps;
long goto_steps;

int bit_get(char *set, int i) { return (set[i >> 3] >> (i & 7)) & 1; }

int bit_set(char *set, int i) {
    int old;
    old = bit_get(set, i);
    set[i >> 3] |= 1 << (i & 7);
    return !old;
}

int set_union(char *dst, char *src) {
    int i; int changed; int before;
    changed = 0;
    for (i = 0; i < SETBYTES; i++) {
        before = dst[i];
        dst[i] |= src[i];
        if (dst[i] != before) changed = 1;
    }
    return changed;
}

int sym_intern(char *name, int is_term) {
    int i;
    for (i = 0; i < nsyms; i++)
        if (str_cmp(sym_name[i], name) == 0)
            return i;
    if (nsyms >= MAXSYM) return 0;
    i = nsyms++;
    str_ncpy(sym_name[i], name, NAMELEN - 1);
    sym_is_term[i] = is_term;
    return i;
}

void parse_grammar() {
    char line[LINELEN];
    char name[NAMELEN];
    int i; int n; int lhs; int r;
    while (read_line(0, line, LINELEN) != -1) {
        i = 0;
        n = 0;
        while (line[i] && line[i] != ':') {
            if (!is_space(line[i]) && n < NAMELEN - 1) name[n++] = line[i];
            i++;
        }
        name[n] = 0;
        if (line[i] != ':' || n == 0) continue;
        i++;
        lhs = sym_intern(name, 0);
        if (nrules >= MAXRULE) continue;
        r = nrules++;
        rule_lhs[r] = lhs;
        rule_len[r] = 0;
        while (line[i]) {
            while (is_space(line[i])) i++;
            if (!line[i] || line[i] == ';') break;
            n = 0;
            while (line[i] && !is_space(line[i]) && line[i] != ';') {
                if (n < NAMELEN - 1) name[n++] = line[i];
                i++;
            }
            name[n] = 0;
            if (rule_len[r] < MAXRHS)
                rule_rhs[r][rule_len[r]++] = sym_intern(name, is_upper(name[0]));
        }
    }
}

void compute_nullable_and_first() {
    int changed; int r; int k; int s; int all_nullable;
    /* terminals' FIRST sets are themselves */
    for (s = 0; s < nsyms; s++)
        if (sym_is_term[s]) bit_set(first_set[s], s);
    changed = 1;
    while (changed) {
        changed = 0;
        for (r = 0; r < nrules; r++) {
            all_nullable = 1;
            for (k = 0; k < rule_len[r]; k++) {
                s = rule_rhs[r][k];
                if (set_union(first_set[rule_lhs[r]], first_set[s])) changed = 1;
                if (!nullable[s]) { all_nullable = 0; break; }
            }
            if (all_nullable && !nullable[rule_lhs[r]]) {
                nullable[rule_lhs[r]] = 1;
                changed = 1;
            }
        }
    }
}

int item_rule(int item) { return item >> 5; }
int item_dot(int item) { return item & 31; }
int make_item(int rule, int dot) { return (rule << 5) | dot; }

int state_has_item(int st, int item) {
    int i;
    for (i = 0; i < state_nitems[st]; i++)
        if (state_items[st][i] == item) return 1;
    return 0;
}

void state_add_item(int st, int item) {
    if (state_nitems[st] < MAXITEM && !state_has_item(st, item))
        state_items[st][state_nitems[st]++] = item;
}

/* Expands a state with closure items: for every item A → α . B β, add
   B → . γ for each rule of B. */
void close_state(int st) {
    int i; int r; int item; int dot; int sym;
    i = 0;
    while (i < state_nitems[st]) {
        item = state_items[st][i];
        r = item_rule(item);
        dot = item_dot(item);
        closure_steps++;
        if (dot < rule_len[r]) {
            sym = rule_rhs[r][dot];
            if (!sym_is_term[sym]) {
                int r2;
                for (r2 = 0; r2 < nrules; r2++)
                    if (rule_lhs[r2] == sym)
                        state_add_item(st, make_item(r2, 0));
            }
        }
        i++;
    }
}

int states_equal(int a, int b) {
    int i;
    if (state_nitems[a] != state_nitems[b]) return 0;
    for (i = 0; i < state_nitems[a]; i++)
        if (!state_has_item(b, state_items[a][i])) return 0;
    return 1;
}

int find_state(int st) {
    int i;
    for (i = 0; i < st; i++)
        if (states_equal(i, st)) return i;
    return -1;
}

/* Builds GOTO(st, sym) into a scratch state; returns 1 if non-empty. */
int build_goto(int st, int sym, int dst) {
    int i; int item; int r; int dot;
    state_nitems[dst] = 0;
    for (i = 0; i < state_nitems[st]; i++) {
        item = state_items[st][i];
        r = item_rule(item);
        dot = item_dot(item);
        goto_steps++;
        if (dot < rule_len[r] && rule_rhs[r][dot] == sym)
            state_add_item(dst, make_item(r, dot + 1));
    }
    return state_nitems[dst] > 0;
}

void build_automaton() {
    int st; int sym; int existing;
    if (nrules == 0) return;
    nstates = 1;
    state_nitems[0] = 0;
    state_add_item(0, make_item(0, 0));
    close_state(0);
    st = 0;
    while (st < nstates) {
        for (sym = 0; sym < nsyms; sym++) {
            if (nstates >= MAXSTATE - 1) break;
            if (build_goto(st, sym, nstates)) {
                close_state(nstates);
                existing = find_state(nstates);
                if (existing < 0) nstates++;
            }
        }
        st++;
    }
}

int main() {
    int total_items; int i;
    parse_grammar();
    if (nrules == 0) return 1;
    compute_nullable_and_first();
    build_automaton();
    total_items = 0;
    for (i = 0; i < nstates; i++) total_items += state_nitems[i];
    put_str("syms ", 1);
    put_int(nsyms, 1);
    put_str(" rules ", 1);
    put_int(nrules, 1);
    put_str(" states ", 1);
    put_int(nstates, 1);
    put_str(" items ", 1);
    put_int(total_items, 1);
    put_str(" closure ", 1);
    put_int(closure_steps, 1);
    put_char('\n', 1);
    flush_all();
    return 0;
}
"#;

/// Generates one run: a grammar whose size grows with the run index.
pub fn gen(run: u64) -> RunInput {
    let mut rng = rng_for("yacc", run);
    let nonterms = 10 + (run as usize % 8) * 4;
    RunInput {
        inputs: vec![NamedFile::new("stdin", grammar(&mut rng, nonterms))],
        args: vec![],
    }
}
