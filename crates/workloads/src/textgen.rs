//! Seeded generators for "representative inputs" (§4: the paper collects
//! real inputs; we synthesize inputs of the same kind, deterministically).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for `(benchmark, run)` so every table cell is
/// reproducible bit-for-bit.
pub fn rng_for(benchmark: &str, run: u64) -> StdRng {
    let mut seed = 0xC0FFEE_u64;
    for b in benchmark.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed ^ (run.wrapping_mul(0x9E3779B97F4A7C15)))
}

const WORDS: &[&str] = &[
    "the",
    "quick",
    "brown",
    "fox",
    "jumps",
    "over",
    "lazy",
    "dog",
    "compiler",
    "inline",
    "function",
    "expansion",
    "profile",
    "weight",
    "graph",
    "stack",
    "register",
    "window",
    "buffer",
    "system",
    "call",
    "return",
    "branch",
    "loop",
    "table",
    "index",
    "value",
    "token",
    "parse",
    "scan",
    "emit",
    "node",
    "arc",
    "cycle",
    "main",
    "static",
    "dynamic",
    "code",
    "size",
    "cost",
    "bound",
    "hazard",
    "expand",
    "caller",
    "callee",
    "linear",
    "order",
    "sequence",
    "cache",
    "memory",
    "access",
    "pipeline",
    "optimize",
    "transfer",
    "control",
];

const IDENTS: &[&str] = &[
    "count", "total", "buf", "ptr", "len", "idx", "tmp", "state", "flags", "mode", "head", "tail",
    "next", "prev", "size", "data", "line", "word", "ch", "fd", "ret", "val", "pos", "lim", "mask",
    "key", "hash", "node", "item", "left", "right",
];

/// A random word from the lexicon.
pub fn word(rng: &mut StdRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// English-ish prose: `words` words with punctuation and line breaks.
pub fn english_text(rng: &mut StdRng, words: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(words * 6);
    let mut col = 0usize;
    for i in 0..words {
        let w = word(rng);
        out.extend_from_slice(w.as_bytes());
        col += w.len() + 1;
        if rng.gen_ratio(1, 12) {
            out.push(if rng.gen_bool(0.5) { b'.' } else { b',' });
        }
        if col > 60 || (i > 0 && rng.gen_ratio(1, 18)) {
            out.push(b'\n');
            col = 0;
        } else {
            out.push(b' ');
        }
    }
    out.push(b'\n');
    out
}

/// Pseudo-C source text with preprocessor directives — food for `cccp`,
/// `wc`, and `tee`. Roughly `lines` lines long.
pub fn c_like_source(rng: &mut StdRng, lines: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut defined: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut line = 0usize;
    while line < lines {
        let roll = rng.gen_range(0..100);
        if roll < 10 {
            let name = format!(
                "CFG_{}{}",
                IDENTS[rng.gen_range(0..IDENTS.len())].to_uppercase(),
                defined.len()
            );
            out.extend_from_slice(
                format!("#define {} {}\n", name, rng.gen_range(0..256)).as_bytes(),
            );
            defined.push(name);
        } else if roll < 14 && !defined.is_empty() {
            let name = &defined[rng.gen_range(0..defined.len())];
            out.extend_from_slice(format!("#ifdef {name}\n").as_bytes());
            depth += 1;
        } else if roll < 18 && depth > 0 {
            out.extend_from_slice(b"#endif\n");
            depth -= 1;
        } else if roll < 22 {
            out.extend_from_slice(format!("/* {} {} */\n", word(rng), word(rng)).as_bytes());
        } else if roll < 30 {
            let f = IDENTS[rng.gen_range(0..IDENTS.len())];
            out.extend_from_slice(format!("int {f}_{line}(int a, int b) {{\n").as_bytes());
        } else if roll < 38 {
            out.extend_from_slice(b"}\n");
        } else {
            let a = IDENTS[rng.gen_range(0..IDENTS.len())];
            let b = IDENTS[rng.gen_range(0..IDENTS.len())];
            let macro_use = if !defined.is_empty() && rng.gen_bool(0.3) {
                defined[rng.gen_range(0..defined.len())].clone()
            } else {
                rng.gen_range(0..100).to_string()
            };
            out.extend_from_slice(
                format!("    {a} = {b} + {macro_use} * {};\n", rng.gen_range(1..9)).as_bytes(),
            );
        }
        line += 1;
    }
    for _ in 0..depth {
        out.extend_from_slice(b"#endif\n");
    }
    out
}

/// A makefile: `targets` object targets with dependencies on earlier
/// ones, then a final `all` target depending on many of them.
pub fn makefile(rng: &mut StdRng, targets: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for i in 0..targets.saturating_sub(1) {
        let name = format!("{}{}.o", IDENTS[rng.gen_range(0..IDENTS.len())], i);
        let mut line = format!("{name}:");
        if !names.is_empty() {
            let ndeps = rng.gen_range(1..=3.min(names.len()));
            for _ in 0..ndeps {
                let d = &names[rng.gen_range(0..names.len())];
                line.push(' ');
                line.push_str(d);
            }
        }
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(format!("\tcc -c {name}\n").as_bytes());
        names.push(name);
    }
    let mut all = String::from("all:");
    for n in &names {
        if rng.gen_bool(0.6) || all == "all:" {
            all.push(' ');
            all.push_str(n);
        }
    }
    out.extend_from_slice(all.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(b"\tld -o all\n");
    out
}

/// A PLA-style truth table for `espresso`: `terms` product terms over
/// `inputs` inputs and one output.
pub fn pla_table(rng: &mut StdRng, inputs: usize, terms: usize) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!(".i {inputs}\n.p {terms}\n").as_bytes());
    for _ in 0..terms {
        for _ in 0..inputs {
            out.push(match rng.gen_range(0..3) {
                0 => b'0',
                1 => b'1',
                _ => b'-',
            });
        }
        out.push(b' ');
        out.push(b'1');
        out.push(b'\n');
    }
    out.extend_from_slice(b".e\n");
    out
}

/// A troff-ish document with `.EQ`/`.EN` equation blocks for `eqn`.
pub fn eqn_document(rng: &mut StdRng, blocks: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let vars = ["x", "y", "z", "alpha", "beta", "gamma", "n", "k"];
    for _ in 0..blocks {
        // Some prose between equations.
        let prose_words = rng.gen_range(8..25);
        out.extend_from_slice(&english_text(rng, prose_words));
        out.extend_from_slice(b".EQ\n");
        let terms = rng.gen_range(2..6);
        let mut eq = String::new();
        for t in 0..terms {
            if t > 0 {
                eq.push_str(if rng.gen_bool(0.5) { " + " } else { " - " });
            }
            let v = vars[rng.gen_range(0..vars.len())];
            match rng.gen_range(0..4) {
                0 => eq.push_str(&format!("{v} sup {}", rng.gen_range(2..5))),
                1 => eq.push_str(&format!("{v} sub {}", rng.gen_range(1..4))),
                2 => eq.push_str(&format!(
                    "{{ {v} over {} }}",
                    vars[rng.gen_range(0..vars.len())]
                )),
                _ => eq.push_str(v),
            }
        }
        out.extend_from_slice(eq.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(b".EN\n");
    }
    out
}

/// A context-free grammar for `yacc`: rules `lhs: sym sym ...;` over
/// `nonterms` nonterminals and a handful of terminals.
pub fn grammar(rng: &mut StdRng, nonterms: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let terms = ["NUM", "ID", "PLUS", "STAR", "LP", "RP", "COMMA", "SEMI"];
    for i in 0..nonterms {
        let nprods = rng.gen_range(1..=3);
        for _ in 0..nprods {
            let mut line = format!("n{i}:");
            let len = rng.gen_range(1..=4);
            for _ in 0..len {
                if rng.gen_bool(0.45) && nonterms > 1 {
                    // Reference an earlier nonterminal (or self, making
                    // the grammar recursive like real expression grammars).
                    let j = rng.gen_range(0..=i);
                    line.push_str(&format!(" n{j}"));
                } else {
                    line.push(' ');
                    line.push_str(terms[rng.gen_range(0..terms.len())]);
                }
            }
            line.push_str(" ;\n");
            out.extend_from_slice(line.as_bytes());
        }
    }
    out
}

/// A token-heavy program-like input for the generated lexer in `lex`.
pub fn lexer_input(rng: &mut StdRng, tokens: usize) -> Vec<u8> {
    let kw = [
        "if", "else", "while", "for", "return", "int", "char", "break",
    ];
    let mut out = Vec::new();
    let mut col = 0;
    for _ in 0..tokens {
        let s: String = match rng.gen_range(0..5) {
            0 => kw[rng.gen_range(0..kw.len())].to_string(),
            1 => IDENTS[rng.gen_range(0..IDENTS.len())].to_string(),
            2 => rng.gen_range(0..10000).to_string(),
            3 => [
                "+", "-", "*", "/", "=", "==", "<=", ">=", "(", ")", "{", "}", ";",
            ][rng.gen_range(0..13)]
            .to_string(),
            _ => format!(
                "{}{}",
                IDENTS[rng.gen_range(0..IDENTS.len())],
                rng.gen_range(0..100)
            ),
        };
        out.extend_from_slice(s.as_bytes());
        col += s.len() + 1;
        if col > 70 {
            out.push(b'\n');
            col = 0;
        } else {
            out.push(b' ');
        }
    }
    out.push(b'\n');
    out
}

/// Mutates about `percent`% of the bytes of `data` (for `cmp`'s
/// similar-file runs).
pub fn mutate(rng: &mut StdRng, data: &[u8], percent: u32) -> Vec<u8> {
    let mut out = data.to_vec();
    for b in &mut out {
        if rng.gen_ratio(percent, 100) {
            *b = rng.gen_range(b'a'..=b'z');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_benchmark_and_run() {
        let a: u64 = rng_for("grep", 3).gen();
        let b: u64 = rng_for("grep", 3).gen();
        let c: u64 = rng_for("grep", 4).gen();
        let d: u64 = rng_for("make", 3).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn generators_produce_plausible_output() {
        let mut rng = rng_for("test", 0);
        let text = english_text(&mut rng, 100);
        assert!(text.len() > 300);
        assert!(text.iter().filter(|&&b| b == b'\n').count() > 2);

        let src = c_like_source(&mut rng, 50);
        let s = String::from_utf8_lossy(&src);
        assert!(s.contains("#define"));
        // Balanced conditionals.
        assert_eq!(s.matches("#ifdef").count(), s.matches("#endif").count());

        let mk = makefile(&mut rng, 10);
        let s = String::from_utf8_lossy(&mk);
        assert!(s.contains("all:"));
        assert!(s.contains("\tcc -c"));

        let pla = pla_table(&mut rng, 8, 20);
        let s = String::from_utf8_lossy(&pla);
        assert!(s.starts_with(".i 8"));
        assert_eq!(s.lines().filter(|l| l.ends_with(" 1")).count(), 20);

        let eqn = eqn_document(&mut rng, 5);
        let s = String::from_utf8_lossy(&eqn);
        assert_eq!(s.matches(".EQ").count(), 5);
        assert_eq!(s.matches(".EN").count(), 5);

        let g = grammar(&mut rng, 6);
        let s = String::from_utf8_lossy(&g);
        assert!(s.contains("n0:"));
        assert!(s.lines().all(|l| l.ends_with(';') || l.is_empty()));

        let li = lexer_input(&mut rng, 200);
        assert!(li.len() > 400);
    }

    #[test]
    fn mutate_changes_roughly_the_requested_fraction() {
        let mut rng = rng_for("cmp", 1);
        let base = english_text(&mut rng, 500);
        let changed = mutate(&mut rng, &base, 10);
        assert_eq!(base.len(), changed.len());
        let diffs = base.iter().zip(&changed).filter(|(a, b)| a != b).count();
        let frac = diffs as f64 / base.len() as f64;
        assert!(frac > 0.03 && frac < 0.20, "frac={frac}");
    }
}
