//! Golden-output snapshots: run 0 of every benchmark hashed, so any
//! accidental behavior drift in the programs, the generators, the front
//! end, or the VM is caught immediately. (Inlining correctness is tested
//! separately by comparing outputs before/after expansion.)

use impact_vm::{run, VmConfig};
use impact_workloads::all_benchmarks;

/// FNV-1a over stdout, exit code, and all written files.
fn fingerprint(name: &str) -> u64 {
    let b = impact_workloads::benchmark(name).unwrap();
    let module = b.compile().unwrap();
    let input = b.run_input(0);
    let out = run(&module, input.inputs, input.args, &VmConfig::default()).unwrap();
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&out.exit_code.to_le_bytes());
    eat(&out.stdout);
    let mut files = out.files.clone();
    files.sort();
    for (fname, data) in &files {
        eat(fname.as_bytes());
        eat(data);
    }
    h
}

#[test]
fn benchmark_outputs_match_recorded_fingerprints() {
    let expected: &[(&str, u64)] = &[
        // REGENERATE: cargo test -p impact-workloads --test golden -- --nocapture
        ("cccp", 0x9d6b7f8546def189),
        ("cmp", 0xe6cd38a7f123aa2e),
        ("compress", 0x2315111af6b294fd),
        ("eqn", 0x3a2d5ec2f625a448),
        ("espresso", 0xfd438b5f6645514a),
        ("grep", 0xd4aa329fd319c138),
        ("lex", 0xad53f96b43e1320c),
        ("make", 0xbfdebb25e78ae2cd),
        ("tar", 0x16ef09711bdb2b17),
        ("tee", 0x0d5e5c7b8a70f3cc),
        ("wc", 0x9acbf9adbd69fbf3),
        ("yacc", 0xe26804c953b7308a),
    ];
    let mut failures = Vec::new();
    for (name, want) in expected {
        let got = fingerprint(name);
        if got != *want {
            failures.push(format!("    (\"{name}\", 0x{got:016x}),"));
        }
    }
    assert!(
        failures.is_empty(),
        "fingerprints changed; if intentional, update to:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fingerprints_are_stable_across_runs() {
    for b in all_benchmarks().iter().take(3) {
        assert_eq!(fingerprint(b.name), fingerprint(b.name));
    }
}
