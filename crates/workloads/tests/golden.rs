//! Golden-output snapshots: run 0 of every benchmark hashed, so any
//! accidental behavior drift in the programs, the generators, the front
//! end, or the VM is caught immediately. (Inlining correctness is tested
//! separately by comparing outputs before/after expansion.)

use impact_vm::{run, VmConfig};
use impact_workloads::all_benchmarks;

/// FNV-1a over stdout, exit code, and all written files.
fn fingerprint(name: &str) -> u64 {
    let b = impact_workloads::benchmark(name).unwrap();
    let module = b.compile().unwrap();
    let input = b.run_input(0);
    let out = run(&module, input.inputs, input.args, &VmConfig::default()).unwrap();
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&out.exit_code.to_le_bytes());
    eat(&out.stdout);
    let mut files = out.files.clone();
    files.sort();
    for (fname, data) in &files {
        eat(fname.as_bytes());
        eat(data);
    }
    h
}

#[test]
fn benchmark_outputs_match_recorded_fingerprints() {
    let expected: &[(&str, u64)] = &[
        // REGENERATE: cargo test -p impact-workloads --test golden -- --nocapture
        ("cccp", 0x0907b91e96c8bc69),
        ("cmp", 0xe6cd38a7f123aa2e),
        ("compress", 0x12b8caf2e141c4bc),
        ("eqn", 0x00019d5041c09104),
        ("espresso", 0x6f0492251735b42e),
        ("grep", 0xcfd8abb21324eaed),
        ("lex", 0x10b36e64f694eec0),
        ("make", 0x442725bb9e16456e),
        ("tar", 0x49837b99ac9c1b5e),
        ("tee", 0xd32306d5c2a12769),
        ("wc", 0xaf5d0f6b8c4bed1b),
        ("yacc", 0x8e5c819bb58272ae),
    ];
    let mut failures = Vec::new();
    for (name, want) in expected {
        let got = fingerprint(name);
        if got != *want {
            failures.push(format!("    (\"{name}\", 0x{got:016x}),"));
        }
    }
    assert!(
        failures.is_empty(),
        "fingerprints changed; if intentional, update to:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fingerprints_are_stable_across_runs() {
    for b in all_benchmarks().iter().take(3) {
        assert_eq!(fingerprint(b.name), fingerprint(b.name));
    }
}
