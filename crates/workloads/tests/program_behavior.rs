//! Functional correctness of each benchmark program on hand-crafted
//! inputs: the miniatures must genuinely behave like the tools they
//! stand in for, otherwise their call profiles mean nothing.

use impact_vm::{run, NamedFile, RunOutcome, VmConfig};
use impact_workloads::benchmark;

fn exec(name: &str, inputs: Vec<NamedFile>, args: Vec<&str>) -> RunOutcome {
    let b = benchmark(name).expect("known benchmark");
    let module = b.compile().expect("compiles");
    run(
        &module,
        inputs,
        args.into_iter().map(String::from).collect(),
        &VmConfig::default(),
    )
    .expect("runs")
}

fn stdout(out: &RunOutcome) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn cccp_defines_expands_and_conditionals() {
    let main_c = b"#define WIDTH 80\n\
#define NAME buffer\n\
int NAME[WIDTH];\n\
#ifdef WIDTH\n\
visible WIDTH\n\
#else\n\
hidden\n\
#endif\n\
#ifdef UNDEFINED\n\
also hidden\n\
#endif\n\
#undef WIDTH\n\
after WIDTH\n"
        .to_vec();
    let out = exec("cccp", vec![NamedFile::new("main.c", main_c)], vec![]);
    let text = stdout(&out);
    assert!(text.contains("int buffer[80];"), "{text}");
    assert!(text.contains("visible 80"), "{text}");
    assert!(!text.contains("hidden"), "{text}");
    // After #undef the macro no longer substitutes.
    assert!(text.contains("after WIDTH"), "{text}");
}

#[test]
fn cccp_includes_and_comments() {
    let main_c = b"/* strip\nme */\n#include \"inc.h\"\nuse MAX here\n// gone\nkeep\n".to_vec();
    let inc_h = b"#define MAX 42\n".to_vec();
    let out = exec(
        "cccp",
        vec![
            NamedFile::new("main.c", main_c),
            NamedFile::new("inc.h", inc_h),
        ],
        vec![],
    );
    let text = stdout(&out);
    assert!(text.contains("use 42 here"), "{text}");
    assert!(!text.contains("strip"), "{text}");
    assert!(!text.contains("gone"), "{text}");
    assert!(text.contains("keep"), "{text}");
}

#[test]
fn cmp_reports_first_difference_position() {
    let out = exec(
        "cmp",
        vec![
            NamedFile::new("a.txt", b"line one\nline two\n".to_vec()),
            NamedFile::new("b.txt", b"line one\nline tWo\n".to_vec()),
        ],
        vec!["a.txt", "b.txt"],
    );
    assert_eq!(out.exit_code, 1);
    let text = stdout(&out);
    // Differs at byte 16 (1-based, as real cmp reports), line 2.
    assert!(text.contains("byte 16"), "{text}");
    assert!(text.contains("line 2"), "{text}");
}

#[test]
fn cmp_identical_and_silent_modes() {
    let same = b"same bytes".to_vec();
    let out = exec(
        "cmp",
        vec![
            NamedFile::new("a.txt", same.clone()),
            NamedFile::new("b.txt", same.clone()),
        ],
        vec!["a.txt", "b.txt"],
    );
    assert_eq!(out.exit_code, 0);
    assert!(stdout(&out).contains("identical"));

    let out = exec(
        "cmp",
        vec![
            NamedFile::new("a.txt", same.clone()),
            NamedFile::new("b.txt", b"different!".to_vec()),
        ],
        vec!["-s", "a.txt", "b.txt"],
    );
    assert_eq!(out.exit_code, 1);
    assert!(stdout(&out).is_empty(), "silent mode prints nothing");
}

#[test]
fn compress_shrinks_repetitive_data() {
    let data = b"abcabcabcabcabcabcabcabcabcabcabcabcabcabcabcabc".repeat(40);
    let in_len = data.len();
    let out = exec("compress", vec![NamedFile::new("stdin", data)], vec![]);
    assert_eq!(out.exit_code, 0);
    let (name, packed) = &out.files[0];
    assert_eq!(name, "out.Z");
    assert!(
        packed.len() < in_len / 2,
        "LZW should halve {in_len} bytes, got {}",
        packed.len()
    );
    let text = stdout(&out);
    assert!(text.contains(&format!("in {in_len}")), "{text}");
}

#[test]
fn compress_handles_incompressible_and_empty() {
    // Empty input: no output bytes, exit 1.
    let out = exec("compress", vec![NamedFile::new("stdin", vec![])], vec![]);
    assert_eq!(out.exit_code, 1);
    // All-distinct codes still round through the table-reset path.
    let data: Vec<u8> = (0..=255u8).cycle().take(12_000).collect();
    let out = exec("compress", vec![NamedFile::new("stdin", data)], vec![]);
    assert_eq!(out.exit_code, 0);
}

#[test]
fn eqn_passes_text_and_rewrites_equations() {
    let doc = b"prose before\n.EQ\nx sup 2 + y sub 1\n.EN\nprose after\n".to_vec();
    let out = exec("eqn", vec![NamedFile::new("stdin", doc)], vec![]);
    let text = stdout(&out);
    assert!(text.contains("prose before"), "{text}");
    assert!(text.contains("prose after"), "{text}");
    assert!(text.contains("[eq]") && text.contains("[/eq]"), "{text}");
    // x sup 2 → VAR<x>^{2}; y sub 1 → VAR<y>_{1}
    assert!(text.contains("VAR<x>^{2}"), "{text}");
    assert!(text.contains("VAR<y>_{1}"), "{text}");
    assert!(text.contains("equations 1"), "{text}");
}

#[test]
fn eqn_braces_and_over() {
    let doc = b".EQ\n{ alpha over beta }\n.EN\n".to_vec();
    let out = exec("eqn", vec![NamedFile::new("stdin", doc)], vec![]);
    let text = stdout(&out);
    assert!(text.contains("(VAR<alpha> / VAR<beta>)"), "{text}");
}

#[test]
fn espresso_merges_distance_one_cubes() {
    // f = a'b + ab  ==>  b   (i.e. "01 1" + "11 1" merge to "-1 1")
    let pla = b".i 2\n.p 2\n01 1\n11 1\n.e\n".to_vec();
    let out = exec("espresso", vec![NamedFile::new("stdin", pla)], vec![]);
    let text = stdout(&out);
    assert!(text.contains("-1\n"), "{text}");
    assert!(text.contains(".terms 1"), "{text}");
    assert!(text.contains(".merges 1"), "{text}");
}

#[test]
fn espresso_removes_covered_cubes() {
    // "1- 1" covers both minterms; merging and covering together leave
    // a single cube.
    let pla = b".i 2\n.p 3\n1- 1\n11 1\n10 1\n.e\n".to_vec();
    let out = exec("espresso", vec![NamedFile::new("stdin", pla)], vec![]);
    let text = stdout(&out);
    assert!(text.contains(".terms 1"), "{text}");
    assert!(text.contains(".lits 1"), "{text}");
    // Pure containment, no merging possible between identical shapes:
    // at least one cube must have been eliminated by covering.
    assert!(text.contains(".covered 1"), "{text}");
}

#[test]
fn grep_literal_anchors_classes_and_star() {
    let corpus = b"the cat sat\ncatalog entry\nconcatenate\ndog only\ncat\n".to_vec();
    // Literal.
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus.clone())],
        vec!["cat"],
    );
    assert_eq!(stdout(&out).lines().count(), 4);
    // Anchored start: "catalog entry" and "cat".
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus.clone())],
        vec!["^cat"],
    );
    assert_eq!(stdout(&out).lines().count(), 2);
    // Anchored both ends.
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus.clone())],
        vec!["^cat$"],
    );
    assert_eq!(stdout(&out), "cat\n");
    // Class + star: "c.*e" matches catalog entry & concatenate.
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus.clone())],
        vec!["c.*e"],
    );
    assert_eq!(stdout(&out).lines().count(), 2);
    // Negated class: lines with a vowel after 'd'.
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus)],
        vec!["d[aeiou]g"],
    );
    assert_eq!(stdout(&out), "dog only\n");
}

#[test]
fn grep_options_count_number_invert() {
    let corpus = b"alpha\nbeta\ngamma\n".to_vec();
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus.clone())],
        vec!["-c", "a"],
    );
    assert_eq!(stdout(&out), "3\n");
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus.clone())],
        vec!["-n", "beta"],
    );
    assert_eq!(stdout(&out), "2:beta\n");
    let out = exec(
        "grep",
        vec![NamedFile::new("stdin", corpus)],
        vec!["-v", "a"],
    );
    assert_eq!(out.exit_code, 1, "nothing survives inversion");
}

#[test]
fn lex_classifies_tokens_with_keyword_trie() {
    let spec = b"if\nwhile\nreturn\n".to_vec();
    let program = b"if x1 while 42 returns return <= ;\n".to_vec();
    let out = exec(
        "lex",
        vec![
            NamedFile::new("spec", spec),
            NamedFile::new("stdin", program),
        ],
        vec![],
    );
    let text = stdout(&out);
    // if, while, return are keywords; x1 and returns are identifiers;
    // 42 is a number; <= and ; are operators.
    assert!(text.contains("ident 2"), "{text}");
    assert!(text.contains("num 1"), "{text}");
    assert!(text.contains("op 2"), "{text}");
    assert!(text.contains("kw 3"), "{text}");
    assert!(text.contains("total 8"), "{text}");
}

#[test]
fn make_rebuilds_stale_targets_transitively() {
    let mk = b"a.o: \n\tcc -c a.o\nb.o: a.o\n\tcc -c b.o\nall: b.o\n\tld -o all\n".to_vec();
    // a.o is missing (time 0) → rebuild a.o, then b.o and all are stale.
    let stamps = b"a.o 0\nb.o 50\nall 90\n".to_vec();
    let out = exec(
        "make",
        vec![
            NamedFile::new("Makefile", mk.clone()),
            NamedFile::new("stamps", stamps),
        ],
        vec![],
    );
    let text = stdout(&out);
    assert!(text.contains("cc -c a.o"), "{text}");
    assert!(text.contains("cc -c b.o"), "{text}");
    assert!(text.contains("ld -o all"), "{text}");
    assert!(text.contains("commands 3"), "{text}");

    // Everything fresh → nothing to do.
    let fresh = b"a.o 10\nb.o 50\nall 90\n".to_vec();
    let out = exec(
        "make",
        vec![
            NamedFile::new("Makefile", mk),
            NamedFile::new("stamps", fresh),
        ],
        vec![],
    );
    assert!(stdout(&out).contains("commands 0"), "{}", stdout(&out));
}

#[test]
fn tar_create_then_extract_round_trips() {
    let f0 = b"first file contents\nwith two lines\n".to_vec();
    let f1 = b"second".to_vec();
    // Create.
    let out = exec(
        "tar",
        vec![
            NamedFile::new("f0.txt", f0.clone()),
            NamedFile::new("f1.txt", f1.clone()),
        ],
        vec!["c"],
    );
    assert_eq!(out.exit_code, 0);
    let archive = out
        .files
        .iter()
        .find(|(n, _)| n == "archive.tar")
        .expect("archive written")
        .1
        .clone();
    assert!(stdout(&out).contains("files 2"), "{}", stdout(&out));

    // Extract what we just created.
    let out = exec(
        "tar",
        vec![NamedFile::new("archive.tar", archive)],
        vec!["x"],
    );
    assert_eq!(out.exit_code, 0);
    let get = |name: &str| {
        out.files
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} extracted"))
            .1
            .clone()
    };
    assert_eq!(get("f0.txt"), f0);
    assert_eq!(get("f1.txt"), f1);
}

#[test]
fn tee_copies_to_stdout_and_files() {
    let data = b"tee copies this".to_vec();
    let out = exec(
        "tee",
        vec![NamedFile::new("stdin", data.clone())],
        vec!["one.txt", "two.txt"],
    );
    assert_eq!(out.exit_code, 0);
    assert_eq!(out.stdout, data);
    assert_eq!(out.files.len(), 2);
    for (_, contents) in &out.files {
        assert_eq!(contents, &data);
    }
}

#[test]
fn wc_counts_lines_words_chars() {
    let a = b"one two three\nfour\n".to_vec(); // 2 lines, 4 words, 19 chars
    let b = b"x\n".to_vec(); // 1 line, 1 word, 2 chars
    let out = exec(
        "wc",
        vec![NamedFile::new("a.txt", a), NamedFile::new("b.txt", b)],
        vec!["a.txt", "b.txt"],
    );
    let text = stdout(&out);
    assert!(text.contains("2 4 19 a.txt"), "{text}");
    assert!(text.contains("1 1 2 b.txt"), "{text}");
    assert!(text.contains("3 5 21 total"), "{text}");
}

#[test]
fn yacc_builds_expected_automaton_for_tiny_grammar() {
    // S → ( S ) | NUM — the canonical nested-parens grammar.
    let grammar = b"s: LP s RP ;\ns: NUM ;\n".to_vec();
    let out = exec("yacc", vec![NamedFile::new("stdin", grammar)], vec![]);
    let text = stdout(&out);
    assert!(text.contains("syms 4"), "{text}"); // s, LP, RP, NUM
    assert!(text.contains("rules 2"), "{text}");
    // LR(0) states for this grammar: a small fixed machine; at minimum
    // the start state plus shifts over LP, NUM, s, and RP.
    let states: i64 = text
        .split("states ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("states count");
    assert!((5..=9).contains(&states), "{text}");
}

#[test]
fn yacc_first_sets_reach_fixpoint_on_recursive_grammar() {
    // Left-recursive list grammar must not loop forever.
    let grammar = b"list: list COMMA ID ;\nlist: ID ;\n".to_vec();
    let out = exec("yacc", vec![NamedFile::new("stdin", grammar)], vec![]);
    assert_eq!(out.exit_code, 0);
    assert!(stdout(&out).contains("rules 2"));
}
