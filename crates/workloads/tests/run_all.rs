//! End-to-end checks over the whole suite: every benchmark runs on its
//! generated inputs, does meaningful work, and (the paper's implicit
//! correctness requirement) produces byte-identical output after inline
//! expansion.

use impact_inline::{inline_module, InlineConfig};
use impact_vm::{run, VmConfig};
use impact_workloads::all_benchmarks;

fn vm_config() -> VmConfig {
    VmConfig {
        max_steps: 400_000_000,
        ..VmConfig::default()
    }
}

#[test]
fn every_benchmark_runs_on_two_inputs() {
    for b in all_benchmarks() {
        let module = b.compile().expect(b.name);
        for idx in 0..2u32 {
            let input = b.run_input(idx);
            let out = run(&module, input.inputs, input.args, &vm_config())
                .unwrap_or_else(|e| panic!("{} run {idx} trapped: {e}", b.name));
            // tee is tiny by design (paper: 24K ILs vs multi-million for
            // the rest); everything else must do substantial work.
            let min_ils = if b.name == "tee" { 1_000 } else { 10_000 };
            assert!(
                out.profile.il_executed > min_ils,
                "{} run {idx} did almost nothing ({} ILs)",
                b.name,
                out.profile.il_executed
            );
            // cmp and grep legitimately exit 1 (files differ / no match).
            assert!(
                out.exit_code == 0 || out.exit_code == 1,
                "{} run {idx} exited with {} (stdout: {:?})",
                b.name,
                out.exit_code,
                String::from_utf8_lossy(&out.stdout)
                    .chars()
                    .take(200)
                    .collect::<String>()
            );
        }
    }
}

#[test]
fn inlining_preserves_output_on_all_benchmarks() {
    for b in all_benchmarks() {
        let module = b.compile().expect(b.name);
        // Profile on run 0, check semantics on runs 0 and 1 (one seen by
        // the profile, one unseen).
        let train = b.run_input(0);
        let base0 = run(
            &module,
            train.inputs.clone(),
            train.args.clone(),
            &vm_config(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut inlined = module.clone();
        let report = inline_module(
            &mut inlined,
            &base0.profile.averaged(),
            &InlineConfig::default(),
        );
        impact_il::verify_module(&inlined)
            .unwrap_or_else(|e| panic!("{} inlined IL invalid: {:?}", b.name, e));
        for idx in 0..2u32 {
            let input = b.run_input(idx);
            let before = run(
                &module,
                input.inputs.clone(),
                input.args.clone(),
                &vm_config(),
            )
            .unwrap_or_else(|e| panic!("{} base run {idx}: {e}", b.name));
            let after = run(&inlined, input.inputs, input.args, &vm_config())
                .unwrap_or_else(|e| panic!("{} inlined run {idx}: {e}", b.name));
            assert_eq!(
                before.exit_code, after.exit_code,
                "{} run {idx} exit code changed",
                b.name
            );
            assert_eq!(
                before.stdout, after.stdout,
                "{} run {idx} stdout changed",
                b.name
            );
            assert_eq!(
                before.files, after.files,
                "{} run {idx} output files changed",
                b.name
            );
        }
        // The report is well-formed: sizes are consistent with the plan.
        assert!(report.size_before > 0);
        assert!(report.size_after > 0);
    }
}

#[test]
fn call_heavy_benchmarks_lose_most_calls() {
    // The headline result (Table 4): call-intensive programs should lose
    // a large share of their dynamic calls; call-poor ones (tee, wc)
    // should be essentially untouched.
    let mut eliminated = Vec::new();
    for b in all_benchmarks() {
        let module = b.compile().expect(b.name);
        let train = b.run_input(0);
        let base = run(
            &module,
            train.inputs.clone(),
            train.args.clone(),
            &vm_config(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut inlined = module.clone();
        let _ = inline_module(
            &mut inlined,
            &base.profile.averaged(),
            &InlineConfig::default(),
        );
        let after = run(&inlined, train.inputs, train.args, &vm_config())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let dec = if base.profile.calls == 0 {
            0.0
        } else {
            100.0 * (base.profile.calls.saturating_sub(after.profile.calls)) as f64
                / base.profile.calls as f64
        };
        let after_ipc = after.profile.ils_per_call();
        eliminated.push((
            b.name,
            dec,
            base.profile.calls,
            after.profile.calls,
            after_ipc,
        ));
    }
    eprintln!("call elimination: {eliminated:?}");
    let entry = |name: &str| {
        eliminated
            .iter()
            .find(|(n, ..)| *n == name)
            .copied()
            .unwrap()
    };
    // Call-intensive programs: large elimination (paper: 55-99%).
    for heavy in [
        "grep", "compress", "eqn", "lex", "espresso", "cccp", "make", "yacc", "tar", "cmp",
    ] {
        let (_, dec, ..) = entry(heavy);
        assert!(dec > 40.0, "{heavy} eliminated only {dec:.1}%");
    }
    // tee: all calls are block-I/O system calls — nothing to eliminate
    // (paper: 0% dec, 15 ILs per call; ours lands within one IL of that).
    let (_, tee_dec, _, _, tee_ipc) = entry("tee");
    assert!(tee_dec < 5.0, "tee eliminated {tee_dec:.1}%");
    assert!(
        tee_ipc < 100,
        "tee ILs/call {tee_ipc} — should stay call-frequent"
    );
    // wc: calls are so rare they are irrelevant either way (paper: 18310
    // ILs per call).
    let (_, _, _, _, wc_ipc) = entry("wc");
    assert!(
        wc_ipc > 1_000,
        "wc ILs/call {wc_ipc} — calls should be rare"
    );
    // Suite average in the ballpark of the paper's 59% (ours is higher
    // because the miniatures have no cold option-parsing tail).
    let avg: f64 = eliminated.iter().map(|(_, d, ..)| d).sum::<f64>() / eliminated.len() as f64;
    assert!(avg > 35.0, "average elimination {avg:.1}% too low");
}
