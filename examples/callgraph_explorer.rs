//! Domain scenario 2 — exploring the weighted call graph with its
//! worst-case `$$$`/`###` nodes. Uses the bundled `make` benchmark
//! (recursion through the dependency walk, a function-pointer dispatched
//! executor, and external file I/O — all three kinds of "interesting"
//! arcs), prints the classification per call site, the recursion the
//! graph detects, and the DOT rendering.
//!
//! ```sh
//! cargo run --release --example callgraph_explorer > make.dot
//! ```

use impact::callgraph::{CallGraph, NodeKind};
use impact::inline::{classify, InlineConfig};
use impact::vm::{profile_runs, VmConfig};

fn main() {
    let b = impact::workloads::benchmark("make").expect("bundled");
    let module = b.compile().expect("compiles");
    let runs = b.profile_run_set(2);
    let (profile, _) = profile_runs(&module, &runs, &VmConfig::default()).expect("profiles");
    let averaged = profile.averaged();
    let graph = CallGraph::build(&module, &averaged);

    eprintln!("== nodes ==");
    for n in graph.nodes() {
        match n.kind {
            NodeKind::Func(f) => eprintln!(
                "  {:<22} weight {:>8}  ({} in / {} out arcs)",
                module.function(f).name,
                n.weight,
                n.in_arcs.len(),
                n.out_arcs.len()
            ),
            NodeKind::External => eprintln!(
                "  $$$ (external summary)           ({} out arcs)",
                n.out_arcs.len()
            ),
            NodeKind::Pointer => eprintln!(
                "  ### (pointer summary)            ({} out arcs)",
                n.out_arcs.len()
            ),
        }
    }

    eprintln!("\n== recursion ==");
    let user = graph.user_cyclic_funcs();
    let conservative = graph.cyclic_funcs();
    eprintln!(
        "  true source-level recursive: {:?}",
        user.iter()
            .map(|f| module.function(*f).name.clone())
            .collect::<Vec<_>>()
    );
    eprintln!(
        "  conservatively recursive  : {} functions (cycles through $$$/###)",
        conservative.len()
    );

    eprintln!("\n== classification ==");
    let classification = classify(&module, &graph, &InlineConfig::default());
    for s in &classification.sites {
        if s.weight == 0 {
            continue;
        }
        let caller = &module.function(s.caller).name;
        let callee = s
            .callee
            .map(|f| module.function(f).name.clone())
            .unwrap_or_else(|| "·".into());
        eprintln!(
            "  {:<10} w={:<8} {caller} -> {callee} ({:?})",
            format!("{:?}", s.class),
            s.weight,
            s.unsafe_reason
        );
    }

    // The DOT graph goes to stdout so it can be piped into graphviz.
    print!("{}", graph.to_dot(&module));
}
