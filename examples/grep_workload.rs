//! Domain scenario 1 — the paper's motivating workload: a text-search
//! tool (`grep`) whose inner loop is a cascade of tiny functions. This
//! example runs the full evaluation pipeline on the bundled `grep`
//! benchmark and prints its Table 2/3/4 row, the hottest arcs, and what
//! the expander did to them.
//!
//! ```sh
//! cargo run --release --example grep_workload
//! ```

use impact::callgraph::CallGraph;
use impact::inline::{classify, inline_module, InlineConfig, SiteClass};
use impact::vm::{profile_runs, VmConfig};

fn main() {
    let b = impact::workloads::benchmark("grep").expect("bundled");
    let module = b.compile().expect("compiles");
    let runs = b.profile_run_set(4);
    let vm_cfg = VmConfig::default();

    let (profile, _) = profile_runs(&module, &runs, &vm_cfg).expect("profiles");
    let averaged = profile.averaged();
    println!(
        "grep: {} C lines, {} static call sites, {} dynamic calls/run",
        b.c_lines(),
        module.all_call_sites().len(),
        averaged.calls
    );

    // Classification — Table 2/3 for this benchmark.
    let inline_cfg = InlineConfig {
        code_growth_limit: 1.2,
        ..InlineConfig::default()
    };
    let graph = CallGraph::build(&module, &averaged);
    let classification = classify(&module, &graph, &inline_cfg);
    let st = classification.static_totals();
    let dy = classification.dynamic_totals();
    println!(
        "static : {:4.1}% external {:4.1}% pointer {:4.1}% unsafe {:4.1}% safe",
        st.percent(SiteClass::External),
        st.percent(SiteClass::Pointer),
        st.percent(SiteClass::Unsafe),
        st.percent(SiteClass::Safe),
    );
    println!(
        "dynamic: {:4.1}% external {:4.1}% pointer {:4.1}% unsafe {:4.1}% safe",
        dy.percent(SiteClass::External),
        dy.percent(SiteClass::Pointer),
        dy.percent(SiteClass::Unsafe),
        dy.percent(SiteClass::Safe),
    );

    // The ten hottest arcs, by profile weight.
    let mut sites = classification.sites.clone();
    sites.sort_by_key(|s| std::cmp::Reverse(s.weight));
    println!("\nhottest arcs:");
    for s in sites.iter().take(10) {
        let caller = &module.function(s.caller).name;
        let callee = s
            .callee
            .map(|f| module.function(f).name.clone())
            .unwrap_or_else(|| "<external/pointer>".into());
        println!(
            "  {:>9} calls  {caller} -> {callee}  [{:?}]",
            s.weight, s.class
        );
    }

    // Expand and measure.
    let mut inlined = module.clone();
    let report = inline_module(&mut inlined, &averaged, &inline_cfg);
    let (after, _) = profile_runs(&inlined, &runs, &vm_cfg).expect("re-profiles");
    println!(
        "\nexpanded {} arcs; code {:+.1}%; dynamic calls {} -> {} ({:.1}% eliminated)",
        report.expanded.len(),
        report.code_increase_percent(),
        profile.calls,
        after.calls,
        100.0 * profile.calls.saturating_sub(after.calls) as f64 / profile.calls as f64
    );
    println!(
        "ILs per remaining call: {} (paper's grep: 11214)",
        after.averaged().ils_per_call()
    );
}
