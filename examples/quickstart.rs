//! Quickstart: compile a small C program, profile it, inline-expand the
//! hot call sites, and watch the dynamic calls disappear.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use impact::cfront::Source;
use impact::il::module_to_string;
use impact::inline::InlineConfig;
use impact::pipeline::compile_profile_inline;

const PROGRAM: &str = r#"
/* A tiny checksum tool written, as the paper advocates, with many small
   functions for clarity. */
extern int __fgetc(int fd);

int rotate(int h) { return (h << 5) | ((h >> 27) & 31); }
int mix(int h, int c) { return rotate(h) ^ c; }

int checksum() {
    int h; int c;
    h = 17;
    while ((c = __fgetc(0)) != -1)
        h = mix(h, c);
    return h;
}

int main() { return checksum() & 0x7f; }
"#;

fn main() {
    let stdin =
        impact::vm::NamedFile::new("stdin", b"profile-guided inline expansion, 1989".to_vec());
    let report = compile_profile_inline(
        &[Source::new("checksum.c", PROGRAM)],
        vec![stdin],
        vec![],
        &InlineConfig::default(),
    )
    .expect("pipeline runs");

    println!("== effect of inline expansion ==");
    println!(
        "dynamic calls : {} -> {}",
        report.calls_before, report.calls_after
    );
    println!(
        "exit code     : {} -> {} (must match)",
        report.exit_before, report.exit_after
    );
    println!(
        "code size     : {} -> {} IL instructions ({:+.1}%)",
        report.inline.size_before,
        report.inline.size_after,
        report.inline.code_increase_percent()
    );
    println!(
        "expanded arcs : {:?}",
        report
            .inline
            .expanded
            .iter()
            .map(|e| format!("{} (weight {})", e.site, e.weight))
            .collect::<Vec<_>>()
    );
    if !report.inline.removed_functions.is_empty() {
        println!("removed       : {:?}", report.inline.removed_functions);
    }
    println!();
    println!("== inlined IL ==");
    print!("{}", module_to_string(&report.module));
}
