//! Domain scenario 3 — tuning the expander: sweep the arc-weight
//! threshold (the paper fixes it at 10, §4.2) on one benchmark and watch
//! the code-size/call-elimination trade-off move.
//!
//! ```sh
//! cargo run --release --example threshold_sweep [benchmark]
//! ```

use impact::inline::{inline_module, InlineConfig};
use impact::vm::{profile_runs, VmConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let b = impact::workloads::benchmark(&name).expect("known benchmark");
    let module = b.compile().expect("compiles");
    let runs = b.profile_run_set(3);
    let vm_cfg = VmConfig::default();
    let (profile, _) = profile_runs(&module, &runs, &vm_cfg).expect("profiles");
    let averaged = profile.averaged();

    println!("{name}: sweeping weight_threshold (paper: 10)");
    println!(
        "{:>10}  {:>9}  {:>9}  {:>6}",
        "threshold", "call dec", "code inc", "arcs"
    );
    for threshold in [1u64, 3, 10, 30, 100, 1000, 10_000, 100_000] {
        let cfg = InlineConfig {
            weight_threshold: threshold,
            code_growth_limit: 1.2,
            ..InlineConfig::default()
        };
        let mut inlined = module.clone();
        let report = inline_module(&mut inlined, &averaged, &cfg);
        let (after, _) = profile_runs(&inlined, &runs, &vm_cfg).expect("re-profiles");
        let dec =
            100.0 * profile.calls.saturating_sub(after.calls) as f64 / profile.calls.max(1) as f64;
        println!(
            "{threshold:>10}  {dec:>8.1}%  {:>8.1}%  {:>6}",
            report.code_increase_percent(),
            report.expanded.len()
        );
    }
}
