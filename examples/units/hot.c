/* A hot leaf call in a counted loop: the canonical profitable
 * inline-expansion shape. CI's batch smoke arms fault points against
 * this unit (`--fault-unit examples/units/hot.c`). */
int sq(int x) { return x * x; }
int cube(int x) { return x * x * x; }
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 100; i++) {
    s += sq(i);
    s += cube(i);
  }
  return s & 0xff;
}
