/* Mixed hot/cold arcs: `bump` dominates the profile while `rare` runs
 * once, so threshold-based inlining should split them. */
int bump(int x) { return x + 3; }
int rare(int x) { return x * x - 1; }
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 200; i++) s = bump(s) & 0x3ff;
  s += rare(s & 7);
  return s & 0xff;
}
