/* Byte-buffer processing through small helpers: call-heavy code where
 * most dynamic calls sit on safe-to-inline arcs. */
int classify(int c) {
  if (c >= 'a' && c <= 'z') return 1;
  if (c >= '0' && c <= '9') return 2;
  return 0;
}
int main() {
  char buf[26];
  int i;
  int letters;
  int digits;
  for (i = 0; i < 26; i++) buf[i] = 'a' + i;
  buf[3] = '7';
  buf[9] = '0';
  letters = 0;
  digits = 0;
  for (i = 0; i < 26; i++) {
    int k;
    k = classify(buf[i]);
    if (k == 1) letters++;
    if (k == 2) digits++;
  }
  return letters * 10 + digits;
}
