//! # impact — profile-guided inline function expansion for C programs
//!
//! A from-scratch reproduction of Wen-mei W. Hwu and Pohua P. Chang,
//! *Inline Function Expansion for Compiling C Programs* (PLDI 1989): the
//! IMPACT-I compiler's profile-guided inline expander, together with every
//! substrate it needs — a C front end, a three-address IL, a profiling
//! VM with an OS layer, a weighted call graph, and classical
//! optimizations — plus the paper's twelve-benchmark evaluation suite.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof and offers [`pipeline`] helpers for the common flow.
//!
//! ```
//! use impact::pipeline;
//!
//! let report = pipeline::compile_profile_inline(
//!     &[impact::cfront::Source::new(
//!         "demo.c",
//!         "int half(int x) { return x / 2; }\n\
//!          int main() { int i; int s; s = 0;\n\
//!            for (i = 0; i < 64; i++) s += half(i);\n\
//!            return s & 0xff; }",
//!     )],
//!     vec![],
//!     vec![],
//!     &impact::inline::InlineConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(report.calls_before, 64);
//! assert_eq!(report.calls_after, 0);
//! assert_eq!(report.exit_before, report.exit_after);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use impact_callgraph as callgraph;
pub use impact_cfront as cfront;
pub use impact_fuzz as fuzz;
pub use impact_il as il;
pub use impact_inline as inline;
pub use impact_opt as opt;
pub use impact_vm as vm;
pub use impact_workloads as workloads;

/// One-call helpers for the compile → profile → inline → re-run flow.
pub mod pipeline {
    use impact_cfront::{compile, CompileError, Source};
    use impact_il::Module;
    use impact_inline::{inline_module, InlineConfig, InlineReport};
    use impact_vm::{run, NamedFile, VmConfig, VmError};

    /// What [`compile_profile_inline`] produces.
    #[derive(Clone, Debug)]
    pub struct PipelineReport {
        /// The inlined module (semantics-equivalent to the original).
        pub module: Module,
        /// The expander's own report.
        pub inline: InlineReport,
        /// Dynamic calls in the profiling run, before expansion.
        pub calls_before: u64,
        /// Dynamic calls on the same input, after expansion.
        pub calls_after: u64,
        /// Exit code before expansion.
        pub exit_before: i64,
        /// Exit code after expansion (must match).
        pub exit_after: i64,
    }

    /// Errors from the pipeline.
    #[derive(Debug)]
    pub enum PipelineError {
        /// Front-end failure.
        Compile(CompileError),
        /// Runtime trap.
        Vm(VmError),
    }

    impl std::fmt::Display for PipelineError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                PipelineError::Compile(e) => write!(f, "compile error: {e}"),
                PipelineError::Vm(e) => write!(f, "runtime error: {e}"),
            }
        }
    }

    impl std::error::Error for PipelineError {}

    impl From<CompileError> for PipelineError {
        fn from(e: CompileError) -> Self {
            PipelineError::Compile(e)
        }
    }

    impl From<VmError> for PipelineError {
        fn from(e: VmError) -> Self {
            PipelineError::Vm(e)
        }
    }

    /// Compiles `sources`, profiles one run on `(inputs, args)`, inline-
    /// expands with `config`, and re-runs to measure the effect.
    ///
    /// # Errors
    ///
    /// Fails on compile errors or if either run traps.
    pub fn compile_profile_inline(
        sources: &[Source],
        inputs: Vec<NamedFile>,
        args: Vec<String>,
        config: &InlineConfig,
    ) -> Result<PipelineReport, PipelineError> {
        let mut module = compile(sources)?;
        let vm_cfg = VmConfig::default();
        let before = run(&module, inputs.clone(), args.clone(), &vm_cfg)?;
        let report = inline_module(&mut module, &before.profile.averaged(), config);
        let after = run(&module, inputs, args, &vm_cfg)?;
        Ok(PipelineReport {
            module,
            inline: report,
            calls_before: before.profile.calls,
            calls_after: after.profile.calls,
            exit_before: before.exit_code,
            exit_after: after.exit_code,
        })
    }
}
