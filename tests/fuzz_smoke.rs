//! Tier-1 fuzz smoke: a bounded differential-oracle campaign runs clean,
//! deterministically, and covers every call-site class — and an injected
//! fault is provably caught. The full-budget campaign runs in CI's
//! dedicated `fuzz-smoke` job; this keeps a small always-on slice in the
//! default test suite.

use impact::fuzz::{program_seed, run_campaign, CampaignConfig, DivergenceKind};

#[test]
fn bounded_campaign_is_clean_and_covers_every_class() {
    let config = CampaignConfig {
        seed: 42,
        budget: 24,
        ..CampaignConfig::default()
    };
    let out = run_campaign(&config, |_, _| {});
    assert_eq!(out.programs, 24);
    assert_eq!(out.skipped, 0, "the generator is trap-free by construction");
    assert!(
        out.findings.is_empty(),
        "oracle divergences on the pinned seed: {:?}",
        out.findings
            .iter()
            .map(|f| (f.index, &f.divergences))
            .collect::<Vec<_>>()
    );
    // Every row of the paper's classification is populated (Tables 2–3).
    let st = out.static_classes;
    assert!(st.external > 0, "{st:?}");
    assert!(st.pointer > 0, "{st:?}");
    assert!(st.r#unsafe > 0, "{st:?}");
    assert!(st.safe > 0, "{st:?}");
    let dy = out.dynamic_classes;
    assert!(
        dy.external > 0 && dy.pointer > 0 && dy.r#unsafe > 0 && dy.safe > 0,
        "{dy:?}"
    );
}

#[test]
fn campaigns_are_reproducible() {
    let config = CampaignConfig {
        seed: 7,
        budget: 4,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&config, |_, _| {});
    let b = run_campaign(&config, |_, _| {});
    assert_eq!(a.static_classes, b.static_classes);
    assert_eq!(a.dynamic_classes, b.dynamic_classes);
    assert_eq!(a.findings.len(), b.findings.len());
    // Per-program seeds are a pure function of (campaign seed, index).
    assert_eq!(program_seed(7, 3), program_seed(7, 3));
    assert_ne!(program_seed(7, 3), program_seed(8, 3));
}

#[test]
fn oracle_catches_an_injected_expansion_fault() {
    let config = CampaignConfig {
        seed: 42,
        budget: 2,
        fault_specs: vec!["expand:verify".to_string()],
        ..CampaignConfig::default()
    };
    let out = run_campaign(&config, |_, _| {});
    assert!(
        !out.findings.is_empty(),
        "an armed expand:verify fault must surface as a finding"
    );
    assert!(out
        .findings
        .iter()
        .flat_map(|f| &f.divergences)
        .any(|d| d.kind == DivergenceKind::Incident));
}
