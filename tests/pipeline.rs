//! Cross-crate integration tests: invariants that hold across the whole
//! compile → profile → optimize → inline pipeline.

use impact::callgraph::{CallGraph, NodeKind};
use impact::cfront::{compile, Source};
use impact::il::verify_module;
use impact::inline::{inline_module, InlineConfig};
use impact::vm::{run, VmConfig};

fn compile_one(src: &str) -> impact::il::Module {
    let m = compile(&[Source::new("t.c", src)]).expect("compiles");
    verify_module(&m).expect("verifies");
    m
}

const CALC: &str = r#"
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int poly(int x) { return add(mul(x, x), add(mul(3, x), 7)); }
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 37; i++) acc = add(acc, poly(i)) & 0xffff;
    return acc & 0xff;
}
"#;

/// Node weight equals the sum of incoming *real* arc weights for every
/// function except main (§2.2: "it is necessary to know the weights of
/// all outgoing arcs associated with a particular incoming arc" — our
/// direct-call graph makes the flow conservation exact).
#[test]
fn node_weight_equals_incoming_arc_weights() {
    let module = compile_one(CALC);
    let out = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    let graph = CallGraph::build(&module, &out.profile);
    for node in graph.nodes() {
        let NodeKind::Func(f) = node.kind else {
            continue;
        };
        if Some(f) == module.main_id() {
            assert_eq!(node.weight, 1, "main runs once");
            continue;
        }
        let incoming: u64 = node
            .in_arcs
            .iter()
            .map(|&a| graph.arc(a))
            .filter(|a| a.site.is_some())
            .map(|a| a.weight)
            .sum();
        assert_eq!(
            node.weight,
            incoming,
            "{} weight vs incoming arcs",
            module.function(f).name
        );
    }
}

/// Optimizing, inlining, then optimizing again — every stage preserves
/// the observable result.
#[test]
fn full_pipeline_preserves_exit_code() {
    let module = compile_one(CALC);
    let baseline = run(&module, vec![], vec![], &VmConfig::default()).unwrap();

    let mut optimized = module.clone();
    impact::opt::optimize_module(&mut optimized);
    verify_module(&optimized).unwrap();
    let after_opt = run(&optimized, vec![], vec![], &VmConfig::default()).unwrap();
    assert_eq!(baseline.exit_code, after_opt.exit_code);

    let mut inlined = optimized.clone();
    let report = inline_module(
        &mut inlined,
        &after_opt.profile.averaged(),
        &InlineConfig::default(),
    );
    verify_module(&inlined).unwrap();
    let after_inline = run(&inlined, vec![], vec![], &VmConfig::default()).unwrap();
    assert_eq!(baseline.exit_code, after_inline.exit_code);
    assert!(report.expanded.len() >= 2, "hot arcs got expanded");

    let mut cleaned = inlined.clone();
    impact::opt::optimize_module(&mut cleaned);
    verify_module(&cleaned).unwrap();
    let after_clean = run(&cleaned, vec![], vec![], &VmConfig::default()).unwrap();
    assert_eq!(baseline.exit_code, after_clean.exit_code);
    // Post-inline cleanup shrinks the parameter-buffering overhead (§2.4).
    assert!(cleaned.total_size() <= inlined.total_size());
}

/// Inlining twice (re-profiling in between) stays semantics-preserving
/// and converges: the second pass finds nothing hot left to expand.
#[test]
fn second_inline_pass_converges() {
    let mut module = compile_one(CALC);
    let p1 = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    inline_module(
        &mut module,
        &p1.profile.averaged(),
        &InlineConfig::default(),
    );
    let p2 = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    assert_eq!(p1.exit_code, p2.exit_code);
    let report2 = inline_module(
        &mut module,
        &p2.profile.averaged(),
        &InlineConfig::default(),
    );
    assert!(
        report2.expanded.is_empty(),
        "second pass re-expanded {:?}",
        report2.expanded
    );
    let p3 = run(&module, vec![], vec![], &VmConfig::default()).unwrap();
    assert_eq!(p1.exit_code, p3.exit_code);
}

/// The realized code size respects the configured budget (with a small
/// constant slack for the splice overhead of movs and jumps, which the
/// plan's estimate does not count).
#[test]
fn code_growth_budget_is_respected() {
    for limit in [1.1f64, 1.5, 2.0] {
        let module = compile_one(CALC);
        let before = module.total_size();
        let profile = run(&module, vec![], vec![], &VmConfig::default())
            .unwrap()
            .profile;
        let mut inlined = module.clone();
        let config = InlineConfig {
            code_growth_limit: limit,
            eliminate_unreachable: false, // measure raw expansion size
            ..InlineConfig::default()
        };
        let report = inline_module(&mut inlined, &profile.averaged(), &config);
        let budget = (before as f64 * limit) as u64;
        let overhead =
            4 * report.expanded.len() as u64 + report.expanded.iter().map(|_| 2).sum::<u64>();
        assert!(
            report.size_after <= budget + overhead,
            "limit {limit}: size {} > budget {budget} + overhead {overhead}",
            report.size_after
        );
    }
}

/// Profile weights drive decisions: with a profile from a different input
/// (where a different path is hot), different arcs get expanded.
#[test]
fn profiles_steer_expansion() {
    let src = r#"
extern int __fgetc(int fd);
int path_a(int x) { return x * 3 + 1; }
int path_b(int x) { return x / 2; }
int main() {
    int c; int acc;
    acc = 0;
    while ((c = __fgetc(0)) != -1) {
        if (c == 'a') acc += path_a(acc + c);
        else acc += path_b(acc + c);
        acc &= 0xffff;
    }
    return acc & 0x7f;
}
"#;
    let module = compile_one(src);
    let input_a = vec![impact::vm::NamedFile::new("stdin", vec![b'a'; 200])];
    let input_b = vec![impact::vm::NamedFile::new("stdin", vec![b'b'; 200])];
    let vm = VmConfig::default();

    let prof_a = run(&module, input_a.clone(), vec![], &vm).unwrap().profile;
    let prof_b = run(&module, input_b.clone(), vec![], &vm).unwrap().profile;

    let cfg = InlineConfig::default();
    let mut mod_a = module.clone();
    let rep_a = inline_module(&mut mod_a, &prof_a.averaged(), &cfg);
    let mut mod_b = module.clone();
    let rep_b = inline_module(&mut mod_b, &prof_b.averaged(), &cfg);

    let names = |r: &impact::inline::InlineReport, m: &impact::il::Module| {
        r.expanded
            .iter()
            .map(|e| m.function(e.callee).name.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&rep_a, &module), vec!["path_a"]);
    assert_eq!(names(&rep_b, &module), vec!["path_b"]);

    // Both still behave identically on BOTH inputs.
    for input in [input_a, input_b] {
        let base = run(&module, input.clone(), vec![], &vm).unwrap();
        let a = run(&mod_a, input.clone(), vec![], &vm).unwrap();
        let b = run(&mod_b, input.clone(), vec![], &vm).unwrap();
        assert_eq!(base.exit_code, a.exit_code);
        assert_eq!(base.exit_code, b.exit_code);
    }
}

/// A whole-suite smoke check through the facade pipeline helper.
#[test]
fn facade_pipeline_runs_a_workload() {
    let b = impact::workloads::benchmark("eqn").unwrap();
    let input = b.run_input(0);
    let report = impact::pipeline::compile_profile_inline(
        &b.sources(),
        input.inputs,
        input.args,
        &InlineConfig {
            code_growth_limit: 1.2,
            ..InlineConfig::default()
        },
    )
    .expect("pipeline");
    assert_eq!(report.exit_before, report.exit_after);
    assert!(report.calls_after < report.calls_before / 2);
}
