//! Property-based testing: generate random well-formed C programs (a
//! layered call DAG of arithmetic functions driven by bounded loops) and
//! check that the whole pipeline — front end, optimizer, inliner under
//! several configurations — preserves the observable result on every one
//! of them.

use impact::cfront::{compile, Source};
use impact::il::verify_module;
use impact::inline::{inline_module, InlineConfig, Linearization};
use impact::vm::{run, VmConfig};
use proptest::prelude::*;

/// A random arithmetic expression over two variables `a` and `b`.
#[derive(Clone, Debug)]
enum Expr {
    A,
    B,
    Lit(i8),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, u8),
    Shr(Box<Expr>, u8),
    // Division made safe by construction: `x / (1 + (y & 7))`.
    SafeDiv(Box<Expr>, Box<Expr>),
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::A => "a".into(),
            Expr::B => "b".into(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            Expr::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            Expr::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            Expr::Xor(l, r) => format!("({} ^ {})", l.render(), r.render()),
            Expr::And(l, r) => format!("({} & {})", l.render(), r.render()),
            Expr::Shl(l, k) => format!("({} << {k})", l.render()),
            Expr::Shr(l, k) => format!("({} >> {k})", l.render()),
            Expr::SafeDiv(l, r) => format!("({} / (1 + ({} & 7)))", l.render(), r.render()),
            Expr::Cond(c, t, e) => {
                format!("({} ? {} : {})", c.render(), t.render(), e.render())
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::A),
        Just(Expr::B),
        any::<i8>().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Xor(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), 0u8..14).prop_map(|(l, k)| Expr::Shl(Box::new(l), k)),
            (inner.clone(), 0u8..14).prop_map(|(l, k)| Expr::Shr(Box::new(l), k)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::SafeDiv(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

/// One generated function: an expression body that may call up to two
/// earlier functions in the DAG (guaranteeing acyclicity).
#[derive(Clone, Debug)]
struct FuncSpec {
    body: Expr,
    calls: Vec<(usize, Expr, Expr)>, // callee index (into earlier funcs), args
}

#[derive(Clone, Debug)]
struct ProgramSpec {
    funcs: Vec<FuncSpec>,
    loop_n: u8,
    seed_a: i8,
    seed_b: i8,
}

impl ProgramSpec {
    fn render(&self) -> String {
        let mut src = String::new();
        for (i, f) in self.funcs.iter().enumerate() {
            src.push_str(&format!("int f{i}(int a, int b) {{\n"));
            src.push_str("    long acc;\n");
            src.push_str(&format!("    acc = {};\n", f.body.render()));
            for (callee, x, y) in &f.calls {
                src.push_str(&format!(
                    "    acc = (acc ^ f{callee}({}, {})) & 0xffffff;\n",
                    x.render(),
                    y.render()
                ));
            }
            src.push_str("    return (int)(acc & 0xffffff);\n}\n");
        }
        let top = self.funcs.len() - 1;
        src.push_str(&format!(
            "int main() {{\n\
             \x20   int i; long s;\n\
             \x20   s = 0;\n\
             \x20   for (i = 0; i < {}; i++)\n\
             \x20       s = (s + f{top}(i + {}, i * {})) & 0xffffff;\n\
             \x20   return (int)(s & 0x7f);\n\
             }}\n",
            self.loop_n, self.seed_a, self.seed_b
        ));
        src
    }
}

fn program_strategy() -> impl Strategy<Value = ProgramSpec> {
    let func = |max_callee: usize| {
        (
            expr_strategy(),
            proptest::collection::vec((0..max_callee, expr_strategy(), expr_strategy()), 0..=2),
        )
            .prop_map(|(body, calls)| FuncSpec { body, calls })
    };
    // 2..=5 functions in a layered DAG.
    (2usize..=5)
        .prop_flat_map(move |n| {
            let mut layers: Vec<BoxedStrategy<FuncSpec>> = Vec::new();
            for i in 0..n {
                layers.push(func(i.max(1)).boxed());
            }
            (layers, 1u8..40, any::<i8>(), any::<i8>())
        })
        .prop_map(|(mut funcs, loop_n, seed_a, seed_b)| {
            // f0 may reference f0 only through max_callee=1 ⇒ itself; make
            // the base function call-free to keep the DAG acyclic.
            funcs[0].calls.clear();
            ProgramSpec {
                funcs,
                loop_n,
                seed_a,
                seed_b,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// The headline property: for arbitrary programs, optimization and
    /// inline expansion (under several configurations) never change the
    /// program's result.
    #[test]
    fn pipeline_preserves_random_programs(spec in program_strategy()) {
        let src = spec.render();
        let module = compile(&[Source::new("gen.c", &src)])
            .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        verify_module(&module).expect("IL verifies");
        let vm = VmConfig::default();
        let baseline = run(&module, vec![], vec![], &vm)
            .unwrap_or_else(|e| panic!("baseline trapped: {e}\n{src}"));

        // Optimizer alone.
        let mut optimized = module.clone();
        impact::opt::optimize_module(&mut optimized);
        verify_module(&optimized).expect("optimized IL verifies");
        let o = run(&optimized, vec![], vec![], &vm).expect("optimized runs");
        prop_assert_eq!(baseline.exit_code, o.exit_code);

        // Inliner under three configurations.
        for config in [
            InlineConfig { weight_threshold: 1, code_growth_limit: 4.0, ..InlineConfig::default() },
            InlineConfig { code_growth_limit: 1.1, ..InlineConfig::default() },
            InlineConfig { linearization: Linearization::Random(7), weight_threshold: 1, ..InlineConfig::default() },
        ] {
            let mut inlined = module.clone();
            let report = inline_module(&mut inlined, &baseline.profile.averaged(), &config);
            verify_module(&inlined)
                .unwrap_or_else(|e| panic!("inlined IL invalid: {e:?}\n{src}"));
            let i = run(&inlined, vec![], vec![], &vm).expect("inlined runs");
            prop_assert_eq!(baseline.exit_code, i.exit_code);
            // And the optimizer on top of the expansion.
            impact::opt::optimize_module(&mut inlined);
            verify_module(&inlined).expect("cleaned IL verifies");
            let c = run(&inlined, vec![], vec![], &vm).expect("cleaned runs");
            prop_assert_eq!(baseline.exit_code, c.exit_code);
            let _ = report;
        }
    }

    /// The constant-folder agrees with the VM on arbitrary expressions:
    /// fold a constant program and compare against the unfolded run.
    #[test]
    fn folding_agrees_with_vm(e in expr_strategy(), a in any::<i8>(), b in any::<i8>()) {
        let src = format!(
            "int main() {{ int a; int b; a = {a}; b = {b}; return ({}) & 0x7f; }}",
            e.render()
        );
        let module = compile(&[Source::new("e.c", &src)]).expect("compiles");
        let vm = VmConfig::default();
        let plain = run(&module, vec![], vec![], &vm).expect("runs");
        let mut folded = module.clone();
        impact::opt::optimize_module(&mut folded);
        let f = run(&folded, vec![], vec![], &vm).expect("folded runs");
        prop_assert_eq!(plain.exit_code, f.exit_code);
    }
}
